"""Linear integer arithmetic via Fourier–Motzkin elimination.

The arithmetic reasoning needed by the benchmark qualifiers is modest:
comparisons between program variables and constants (``v < el``,
``len >= 0``, ``x == y + 1``).  Constraints are normalised to the form
``sum(coeff * atom) + const <= 0`` over exact rationals; strict inequalities
over integer coefficients are tightened to non-strict ones.  Satisfiability
is decided by eliminating variables one at a time.

Fourier–Motzkin over the rationals is sound for refutation: if it reports
``inconsistent`` the constraints have no integer solution either.  It may
report ``consistent`` for a system that is only rationally feasible; in the
HAT pipeline that direction merely keeps an extra automaton character or
rejects a subtyping obligation, so verification stays sound (never accepts a
bad program).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Optional

from . import terms
from .terms import Term

#: A linear expression: mapping from atomic term to coefficient, plus constant.
LinExpr = tuple[dict[Term, Fraction], Fraction]


class NonLinearError(ValueError):
    """Raised when a term cannot be interpreted as a linear expression."""


def linearize(term: Term) -> LinExpr:
    """Interpret an Int-sorted term as a linear expression.

    Uninterpreted subterms (variables, function applications) become atomic
    "variables" of the expression.
    """
    if term.sort is not terms.INT:
        raise NonLinearError(f"{term!r} is not an Int term")
    kind = term.kind
    if kind == terms.INT_CONST:
        return {}, Fraction(term.payload)
    if kind in (terms.VAR, terms.APP, terms.DATA_CONST):
        return {term: Fraction(1)}, Fraction(0)
    if kind == terms.ADD:
        coeffs: dict[Term, Fraction] = {}
        const = Fraction(0)
        for child in term.children:
            child_coeffs, child_const = linearize(child)
            const += child_const
            for atom, coeff in child_coeffs.items():
                coeffs[atom] = coeffs.get(atom, Fraction(0)) + coeff
        return _prune(coeffs), const
    if kind == terms.SUB:
        lhs_coeffs, lhs_const = linearize(term.children[0])
        rhs_coeffs, rhs_const = linearize(term.children[1])
        coeffs = dict(lhs_coeffs)
        for atom, coeff in rhs_coeffs.items():
            coeffs[atom] = coeffs.get(atom, Fraction(0)) - coeff
        return _prune(coeffs), lhs_const - rhs_const
    if kind == terms.NEG:
        coeffs, const = linearize(term.children[0])
        return {a: -c for a, c in coeffs.items()}, -const
    if kind == terms.MUL:
        coeffs, const = linearize(term.children[0])
        factor = Fraction(term.payload)
        return _prune({a: c * factor for a, c in coeffs.items()}), const * factor
    raise NonLinearError(f"cannot linearise {term!r}")


def _prune(coeffs: dict[Term, Fraction]) -> dict[Term, Fraction]:
    return {a: c for a, c in coeffs.items() if c != 0}


@dataclass(frozen=True)
class Constraint:
    """``sum(coeffs) + const <= 0`` (or ``< 0`` when ``strict``)."""

    coeffs: tuple[tuple[Term, Fraction], ...]
    const: Fraction
    strict: bool

    @staticmethod
    def make(coeffs: dict[Term, Fraction], const: Fraction, strict: bool) -> "Constraint":
        items = tuple(sorted(coeffs.items(), key=lambda kv: kv[0].term_id))
        # integer tightening: a < 0 with integral coefficients means a <= -1
        if strict and all(c.denominator == 1 for _, c in items) and const.denominator == 1:
            return Constraint(items, const + 1, False)
        return Constraint(items, const, strict)

    def coeff_dict(self) -> dict[Term, Fraction]:
        return dict(self.coeffs)

    def is_ground(self) -> bool:
        return not self.coeffs

    def ground_holds(self) -> bool:
        if self.strict:
            return self.const < 0
        return self.const <= 0


def atom_to_constraints(atom: Term, value: bool) -> Optional[list[list[Constraint]]]:
    """Translate an asserted comparison atom to constraints.

    The result is in conjunctive normal form over constraints: a list of
    disjunctions, each of which is a list of constraints (disequalities need a
    two-way split).  Returns ``None`` when the atom is not arithmetic.
    """
    kind = atom.kind
    if kind == terms.EQ:
        lhs, rhs = atom.children
        if lhs.sort is not terms.INT:
            return None
        diff_coeffs, diff_const = _difference(lhs, rhs)
        if value:
            return [
                [Constraint.make(diff_coeffs, diff_const, strict=False)],
                [Constraint.make(_negate(diff_coeffs), -diff_const, strict=False)],
            ]
        return [
            [
                Constraint.make(diff_coeffs, diff_const, strict=True),
                Constraint.make(_negate(diff_coeffs), -diff_const, strict=True),
            ]
        ]
    if kind in (terms.LT, terms.LE):
        lhs, rhs = atom.children
        diff_coeffs, diff_const = _difference(lhs, rhs)
        if kind == terms.LT:
            if value:  # lhs - rhs < 0
                return [[Constraint.make(diff_coeffs, diff_const, strict=True)]]
            # not (lhs < rhs)  <=>  rhs - lhs <= 0
            return [[Constraint.make(_negate(diff_coeffs), -diff_const, strict=False)]]
        if value:  # lhs - rhs <= 0
            return [[Constraint.make(diff_coeffs, diff_const, strict=False)]]
        # not (lhs <= rhs)  <=>  rhs - lhs < 0
        return [[Constraint.make(_negate(diff_coeffs), -diff_const, strict=True)]]
    return None


def _difference(lhs: Term, rhs: Term) -> tuple[dict[Term, Fraction], Fraction]:
    lhs_coeffs, lhs_const = linearize(lhs)
    rhs_coeffs, rhs_const = linearize(rhs)
    coeffs = dict(lhs_coeffs)
    for atom, coeff in rhs_coeffs.items():
        coeffs[atom] = coeffs.get(atom, Fraction(0)) - coeff
    return _prune(coeffs), lhs_const - rhs_const


def _negate(coeffs: dict[Term, Fraction]) -> dict[Term, Fraction]:
    return {a: -c for a, c in coeffs.items()}


def _fm_consistent(constraints: list[Constraint]) -> bool:
    """Fourier–Motzkin feasibility test over the rationals."""
    constraints = list(constraints)
    while True:
        for constraint in constraints:
            if constraint.is_ground() and not constraint.ground_holds():
                return False
        variables = {atom for c in constraints for atom, _ in c.coeffs}
        if not variables:
            return True
        # eliminate the variable with the fewest pos*neg combinations
        def cost(variable: Term) -> int:
            pos = sum(1 for c in constraints if c.coeff_dict().get(variable, 0) > 0)
            neg = sum(1 for c in constraints if c.coeff_dict().get(variable, 0) < 0)
            return pos * neg

        target = min(variables, key=lambda v: (cost(v), v.term_id))
        upper: list[Constraint] = []  # coeff > 0
        lower: list[Constraint] = []  # coeff < 0
        rest: list[Constraint] = []
        for c in constraints:
            coeff = c.coeff_dict().get(target, Fraction(0))
            if coeff > 0:
                upper.append(c)
            elif coeff < 0:
                lower.append(c)
            else:
                rest.append(c)
        new_constraints = rest
        for up in upper:
            for low in lower:
                up_coeffs, low_coeffs = up.coeff_dict(), low.coeff_dict()
                a = up_coeffs[target]
                b = -low_coeffs[target]
                combined: dict[Term, Fraction] = {}
                for atom, coeff in up_coeffs.items():
                    combined[atom] = combined.get(atom, Fraction(0)) + coeff * b
                for atom, coeff in low_coeffs.items():
                    combined[atom] = combined.get(atom, Fraction(0)) + coeff * a
                combined.pop(target, None)
                const = up.const * b + low.const * a
                new_constraints.append(
                    Constraint.make(_prune(combined), const, up.strict or low.strict)
                )
        if len(new_constraints) > 4000:
            # Safety valve: give up and declare (rationally) consistent, which
            # is the sound direction for the verification pipeline.
            return True
        constraints = new_constraints


def check_arith(
    literals: Iterable[tuple[Term, bool]],
    extra_equalities: Iterable[tuple[Term, Term]] = (),
) -> bool:
    """Decide consistency of the arithmetic fragment of the given literals.

    ``extra_equalities`` are equalities between Int-sorted terms propagated
    from the EUF solver.
    """
    cnf: list[list[Constraint]] = []
    try:
        for atom, value in literals:
            translated = atom_to_constraints(atom, value)
            if translated is not None:
                cnf.extend(translated)
        for lhs, rhs in extra_equalities:
            coeffs, const = _difference(lhs, rhs)
            cnf.append([Constraint.make(coeffs, const, strict=False)])
            cnf.append([Constraint.make(_negate(coeffs), -const, strict=False)])
    except NonLinearError:
        return True  # cannot refute: stay sound by reporting consistent

    return _check_cnf(cnf, [])


def _check_cnf(cnf: list[list[Constraint]], chosen: list[Constraint]) -> bool:
    if not cnf:
        return _fm_consistent(chosen)
    first, rest = cnf[0], cnf[1:]
    for option in first:
        if _check_cnf(rest, chosen + [option]):
            return True
    return False
