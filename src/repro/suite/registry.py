"""The benchmark registry: every ADT/library combination of the reproduction."""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from .benchmark import AdtBenchmark
from .dfa_graph import connected_graph_graph, dfa_graph
from .filesystem import filesystem_kvstore
from .lazyset_set import lazyset_set
from .set_kvstore import lazyset_kvstore, set_kvstore, stack_kvstore

#: Ordered constructors, one per evaluation-table row.
BENCHMARK_FACTORIES: tuple[Callable[[], AdtBenchmark], ...] = (
    set_kvstore,
    stack_kvstore,
    lazyset_kvstore,
    lazyset_set,
    dfa_graph,
    connected_graph_graph,
    filesystem_kvstore,
)


def all_benchmarks(*, include_slow: bool = True) -> list[AdtBenchmark]:
    """Instantiate the whole corpus (optionally skipping the slow rows)."""
    benchmarks = [factory() for factory in BENCHMARK_FACTORIES]
    if not include_slow:
        benchmarks = [b for b in benchmarks if not b.slow]
    return benchmarks


def benchmark_by_key(key: str) -> AdtBenchmark:
    """Look up a benchmark by its ``ADT/Library`` key (e.g. ``"Set/KVStore"``)."""
    for benchmark in all_benchmarks():
        if benchmark.key == key:
            return benchmark
    raise KeyError(f"unknown benchmark {key!r}; known: {[b.key for b in all_benchmarks()]}")
