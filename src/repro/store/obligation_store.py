"""The persistent obligation store: verdicts + witnesses + discharge stats.

An :class:`ObligationStore` maps
(:func:`~repro.store.fingerprint.environment_fingerprint`,
:func:`~repro.store.fingerprint.obligation_digest`) keys to discharged
obligations: besides the verdict (included / counterexample trace /
resource-limit error) each entry carries the per-obligation
``SolverStats``/``InclusionStats`` counter dicts, so a warm run merges
*exactly* the numbers a cold discharge would have produced — this is what
makes warm tables byte-identical to cold ones — plus a dependency record
(benchmark scope, method, spec digest, library digest) for targeted
invalidation and an advisory cost record for the scheduler.

Persistence is delegated to a :mod:`~repro.store.backends` backend, selected
from the store path (``.db``/``sqlite:`` → sqlite, directory → jsonl) or
forced via ``backend=``/``REPRO_STORE_BACKEND``:

* the **jsonl** backend keeps the original directory layout (``meta.json``,
  append-only ``entries.jsonl`` where the last line per key wins,
  ``runs.jsonl``, ``shards/``), hardened with an advisory ``flock`` per
  write and atomic fsynced rewrites;
* the **sqlite** backend keeps one WAL-mode database file with the same
  records in ``entries``/``deps``/``costs``/``runs`` tables, UPSERTed on the
  ``(env, fp)`` primary key;
* the **remote** backend (an ``http://``/``https://`` store path) is a
  client for ``repro store serve``: the session mirrors only the entries it
  batch-fetched or wrote, and every read-modify-rewrite operation below runs
  *server-side* under the wrapped backend's lock — ``update(fn)`` closures
  cannot cross the wire, so the wire speaks store-level operations instead
  (see :mod:`repro.store.remote` and :mod:`repro.store.server`).

Either way the store is safe under concurrent writer processes: appends can
never interleave partial entries, and the read-modify-rewrite operations
(:meth:`compact`, :meth:`invalidate_stale`, :meth:`commit_run`, :meth:`gc`)
re-read the on-disk state under an exclusive lock/transaction before
rewriting, so entries appended by another process since :meth:`_load` are
never silently dropped.  Corrupt or torn records (a killed writer's partial
line) are skipped and counted — see ``summary()["skipped"]`` — never fatal.

Invalidation is dependency-tracked: when a method is about to be verified,
:meth:`invalidate_stale` drops exactly the entries whose recorded spec or
library digest no longer matches — entries of other benchmarks (and of this
benchmark's unchanged methods) are untouched.  Content addressing already
guarantees a *changed* obligation can never hit a stale verdict; invalidation
keeps the store from accumulating unreachable entries and makes the
``--explain`` counts meaningful.

One caveat is inherited from the engine's cross-method memo: per-obligation
counters are pure functions of (inline-solver warm snapshot, obligation), and
the warm snapshot depends on which methods were emitted before the obligation
first needed discharging.  Re-running the *same* command against a store is
therefore byte-identical; mixing differently-shaped runs (``check --method``
vs ``evaluate``) can shift cache-hit counters between columns — never
verdicts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from ..obs import trace
from ..obs.logs import get_logger
from .backends import (
    ENTRY_DECODE_ERRORS,
    SCHEMA_VERSION,
    LoadedState,
    StoreEntry,
    append_jsonl_batch,
    open_backend,
)

#: the run log is trimmed to this many most-recent records on commit
_MAX_RUN_RECORDS = 256

logger = get_logger("store")


# ---------------------------------------------------------------------------
# The pure halves of the read-modify-rewrite operations.  Factored out so the
# local store and the ``repro store serve`` service run the *same* logic —
# one executes it in-process under the backend lock, the other server-side
# on a client's behalf.
# ---------------------------------------------------------------------------


def stale_entry_keys(
    entries: dict[tuple[str, str], StoreEntry],
    scope: str,
    method: str,
    spec_digest: str,
    library_digest: str,
) -> list[tuple[str, str]]:
    """Keys invalidated by a spec/library edit (see :meth:`invalidate_stale`)."""
    return [
        key
        for key, entry in entries.items()
        if entry.scope == scope
        and (
            entry.library != library_digest
            or (entry.method == method and entry.spec != spec_digest)
        )
    ]


def append_run_record(runs: list[dict], touched: list[str]) -> tuple[list[dict], int]:
    """Append one run record, trimmed; returns ``(runs, sequence number)``."""
    sequence = (runs[-1]["run"] + 1) if runs else 1
    runs.append({"run": sequence, "touched": list(touched)})
    del runs[:-_MAX_RUN_RECORDS]
    return runs, sequence


def sweep_unreferenced(
    entries: dict[tuple[str, str], StoreEntry], runs: list[dict], keep_last: int
) -> tuple[dict[tuple[str, str], StoreEntry], list[dict], list[tuple[str, str]]]:
    """Drop entries unreferenced by the last ``keep_last`` runs (see :meth:`gc`).

    Returns ``(surviving entries, kept runs, dropped keys)``.
    """
    kept_runs = runs[-keep_last:]
    referenced: set[tuple[str, str]] = set()
    for record in kept_runs:
        for key in record["touched"]:
            env, _, fp = key.partition(":")
            referenced.add((env, fp))
    stale = [key for key in entries if key not in referenced]
    for key in stale:
        del entries[key]
    return entries, kept_runs, stale


@dataclass(frozen=True)
class StoreContext:
    """The dependency record attached to entries written during one method."""

    scope: str
    method: str
    spec_digest: str
    library_digest: str


@dataclass
class MethodStoreCounts:
    """Per-method session counters backing ``--explain``."""

    hits: int = 0
    misses: int = 0
    invalidated: int = 0


class ObligationStore:
    """A content-addressed, dependency-indexed verdict store on disk."""

    def __init__(
        self,
        path: os.PathLike | str,
        *,
        shard_output: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.backend = open_backend(path, backend)
        self.path = self.backend.path
        #: when set, writes go to ``shards/shard-K.jsonl`` instead of the main
        #: log, and invalidation never rewrites the (shared) main log — the
        #: mode the sharded runner's forked children run in.
        self.shard_output = shard_output
        self._entries: dict[tuple[str, str], StoreEntry] = {}
        self._pending: list[StoreEntry] = []
        #: every entry recorded through this session (never cleared by a
        #: flush): what a locked rewrite merges over the re-read disk state,
        #: so our writes survive a concurrent compaction and vice versa
        self._session_writes: dict[tuple[str, str], StoreEntry] = {}
        #: per-(scope, method) session counters, in first-check order
        self.session: dict[tuple[str, str], MethodStoreCounts] = {}
        #: corrupt/torn persisted records skipped (never fatal) while loading
        #: the store or absorbing shard files in this session
        self.skipped_records = 0
        #: obligation fp -> recorded wall cost (advisory, env-free): built
        #: from every loaded/recorded entry and deliberately *not* pruned by
        #: invalidation — a stale verdict's cost is still a fine schedule hint
        self._cost_index: dict[str, float] = {}
        #: (env, fp) keys referenced (hit or written) since the last
        #: :meth:`commit_run` — the session bookkeeping behind store GC
        self._touched: dict[tuple[str, str], None] = {}
        #: the persisted run log: one ``{"run": n, "touched": [...]}`` per run
        self._runs: list[dict] = []
        #: remote mode only — ``(env, fp)`` keys a batched lookup already
        #: checked against the server, found or not; a key in here but not in
        #: ``_entries`` is a *known* miss and costs no further round-trip
        self._remote_checked: set[tuple[str, str]] = set()
        self._load()

    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def is_remote(self) -> bool:
        """Whether this session talks to a ``repro store serve`` instance.

        A remote session mirrors only the entries it fetched or wrote;
        read-modify-rewrite operations run server-side, under the wrapped
        backend's lock, because ``update(fn)`` closures cannot cross the wire.
        """
        return not getattr(self.backend, "supports_update", True)

    # -- loading -----------------------------------------------------------------
    def _load(self) -> None:
        if self.is_remote:
            # no wholesale load: handshake (verifying the schema tag and, if
            # one was demanded, the wrapped backend's identity), then the
            # advisory cost index the scheduler orders cold obligations by
            with trace.span("store.load", cat="store", backend=self.backend.name):
                info = self.backend.handshake()
                self._cost_index.update(self.backend.cost_hints())
            self.skipped_records += int(info.get("skipped", 0))
            return
        # shard children never wipe the shared store on a schema mismatch
        # (the parent already did, or will, before forking them)
        with trace.span("store.load", cat="store", backend=self.backend.name):
            state = self.backend.load(wipe_mismatch=self.shard_output is None)
        self._adopt(state)

    def _adopt(self, state: LoadedState) -> None:
        self._entries = state.entries
        self._runs = state.runs
        if state.skipped:
            logger.warning(
                "skipped %d corrupt/torn store record(s) while loading %s",
                state.skipped,
                self.path,
            )
        self.skipped_records += state.skipped
        for entry in self._entries.values():
            self._note_cost(entry)

    def _note_cost(self, entry: StoreEntry) -> None:
        wall = entry.wall_cost
        if wall is not None:
            self._cost_index[entry.fp] = wall

    # -- the read/write surface ----------------------------------------------------
    def lookup(self, env: str, fp: str) -> Optional[StoreEntry]:
        with trace.span("store.lookup", cat="store", fp=fp) as lookup_span:
            entry = self._entries.get((env, fp))
            if (
                entry is None
                and self.is_remote
                and (env, fp) not in self._remote_checked
            ):
                # unbatched fallback (one fetch per unseen key); the engine's
                # :meth:`prefetch` is the batched fast path
                fetched = self.backend.lookup(env, [fp])
                self._remote_checked.add((env, fp))
                if fetched:
                    entry = fetched[0]
                    self._entries[entry.key] = entry
                    self._note_cost(entry)
            lookup_span.set(hit=entry is not None)
        if entry is not None:
            self._touched[entry.key] = None
        return entry

    def prefetch(self, env: str, fps: list[str]) -> None:
        """Batch-fetch a discharge batch's keys ahead of per-obligation lookups.

        A no-op for local stores (every entry is already in memory); against a
        remote store this turns N round-trips into one batched ``lookup`` RPC.
        Keys the server does not hold are remembered as known misses.
        """
        if not self.is_remote:
            return
        missing = [
            fp
            for fp in dict.fromkeys(fps)
            if (env, fp) not in self._entries and (env, fp) not in self._remote_checked
        ]
        if not missing:
            return
        for entry in self.backend.lookup(env, missing):
            self._entries[entry.key] = entry
            self._note_cost(entry)
        self._remote_checked.update((env, fp) for fp in missing)

    def forget_remote_misses(self) -> None:
        """Drop the session's known-miss cache (remote sessions only).

        A prefetch that came back empty is remembered so later lookups cost
        no round-trip — but a dispatch coordinator *expects* other processes
        to fill those keys between its collect and report phases, so it
        forgets the misses before the warm pass re-fetches them.
        """
        self._remote_checked.clear()

    def record(self, entry: StoreEntry) -> None:
        self._entries[entry.key] = entry
        self._pending.append(entry)
        self._session_writes[entry.key] = entry
        self._touched[entry.key] = None
        self._note_cost(entry)

    def cost_hint(self, fp: str) -> Optional[float]:
        """The last recorded wall cost for an obligation fingerprint, if any.

        Deliberately environment-free: verdicts must never cross environments
        (a cdcl run cannot replay dpll counters), but a *measurement* of how
        long the obligation took to discharge is a fine scheduling hint under
        any backend/strategy — which is exactly when cold obligations have
        history (the same-environment case would have been a store hit).
        """
        return self._cost_index.get(fp)

    def flush(self) -> None:
        """Append pending entries to the log (or to this process's shard file).

        The backend appends the whole batch under an exclusive lock (jsonl:
        one ``write()`` of the pre-joined lines; sqlite: one UPSERT
        transaction), so concurrent flushes can interleave batches but never
        the bytes of one entry.
        """
        if not self._pending:
            return
        logger.debug("flushing %d pending store entries to %s", len(self._pending), self.path)
        with trace.span("store.flush", cat="store", entries=len(self._pending)):
            if self.shard_output is None:
                self.backend.append_entries(self._pending)
            else:
                # a shard file is private to this worker process; a single
                # appending write still keeps a torn tail from costing more
                # than one entry if the worker is killed mid-flush
                self.backend.shard_dir.mkdir(parents=True, exist_ok=True)
                append_jsonl_batch(
                    self.backend.shard_dir / f"shard-{self.shard_output}.jsonl",
                    [entry.to_json() for entry in self._pending],
                )
        self._pending.clear()

    def compact(self) -> None:
        """Rewrite the log with exactly the live entries (drops dead lines).

        Runs as a locked read-modify-rewrite: the on-disk state is re-read
        under the exclusive lock and this session's writes merged over it, so
        entries appended by a concurrent process since :meth:`_load` survive
        the compaction instead of being lost to a stale snapshot.
        """
        if self.shard_output is not None:
            return
        if self.is_remote:
            # the server compacts under its own lock; our writes must be
            # durably appended first so the rewrite sees them
            self.flush()
            self.backend.compact()
            return

        def merge_session(entries, runs):
            entries.update(self._session_writes)
            return entries, runs

        self._adopt(self.backend.update(merge_session, runs=False))
        self._pending.clear()

    # -- dependency-tracked invalidation -------------------------------------------
    def invalidate_stale(
        self, scope: str, method: str, spec_digest: str, library_digest: str
    ) -> int:
        """Drop exactly the entries invalidated by a spec or library edit.

        An entry of ``scope`` dies when the benchmark's library digest changed
        (every method's obligations sat on its axioms and alphabets) or when
        it belongs to ``method`` and that method's spec digest changed.
        Entries of other scopes are never touched.
        """

        local_stale = stale_entry_keys(
            self._entries, scope, method, spec_digest, library_digest
        )
        if self.shard_output is not None or (not self.is_remote and not local_stale):
            # shard children never rewrite the shared log; and when a local
            # session's view has nothing stale, skip the locked rewrite —
            # the overwhelmingly common (warm, unedited) case stays cheap
            for key in local_stale:
                del self._entries[key]
                self._session_writes.pop(key, None)
            return len(local_stale)

        if self.is_remote:
            # the server drops stale entries under its lock; flush first so
            # this session's (never-stale: they carry the current digests)
            # writes are not raced by the rewrite, then retire the mirror's
            # stale view — a dropped key is a *known* miss from here on
            self.flush()
            with trace.span("store.invalidate", cat="store"):
                dropped = self.backend.invalidate(
                    scope, method, spec_digest, library_digest
                )
            for key in local_stale:
                del self._entries[key]
                self._session_writes.pop(key, None)
                self._remote_checked.add(key)
            logger.debug(
                "invalidated %d stale entries for %s.%s (remote)", dropped, scope, method
            )
            return dropped

        dropped = 0

        def drop_stale(entries, runs):
            nonlocal dropped
            entries.update(self._session_writes)
            stale = stale_entry_keys(entries, scope, method, spec_digest, library_digest)
            dropped = len(stale)
            for key in stale:
                del entries[key]
                # an invalidated session write must not be resurrected by a
                # later rewrite's session merge
                self._session_writes.pop(key, None)
            return entries, runs

        with trace.span("store.invalidate", cat="store"):
            self._adopt(self.backend.update(drop_stale, runs=False))
        self._pending.clear()
        logger.debug("invalidated %d stale entries for %s.%s", dropped, scope, method)
        return dropped

    # -- session bookkeeping (--explain) -------------------------------------------
    def note_method(
        self, scope: str, method: str, *, hits: int = 0, misses: int = 0, invalidated: int = 0
    ) -> None:
        counts = self.session.setdefault((scope, method), MethodStoreCounts())
        counts.hits += hits
        counts.misses += misses
        counts.invalidated += invalidated

    def summary(self) -> dict[str, int]:
        return {
            "entries": len(self),
            "hits": sum(c.hits for c in self.session.values()),
            "misses": sum(c.misses for c in self.session.values()),
            "invalidated": sum(c.invalidated for c in self.session.values()),
            "skipped": self.skipped_records,
        }

    def explain(self) -> list[dict[str, object]]:
        """Per-method hit/miss/invalidated counts, in first-check order."""
        return [
            {
                "scope": scope,
                "method": method,
                "hits": counts.hits,
                "misses": counts.misses,
                "invalidated": counts.invalidated,
            }
            for (scope, method), counts in self.session.items()
        ]

    # -- run bookkeeping and garbage collection --------------------------------------
    def commit_run(self) -> int:
        """Close the current session as one *run* in the persistent run log.

        Appends the set of entry keys this session referenced (store hits and
        fresh writes alike) to the run log — the reference trail :meth:`gc`
        keeps entries alive by.  The sequence number and the trim are
        computed against the log as re-read under the exclusive lock, so two
        processes committing concurrently get distinct sequence numbers and
        neither overwrites the other's record.  Returns the number of keys
        recorded; a session that touched nothing records no run.  Shard
        workers never commit runs (the parent absorbs their entries and
        commits on their behalf).
        """
        if self.shard_output is not None or not self._touched:
            self._touched.clear()
            return 0
        self.flush()
        touched = sorted(f"{env}:{fp}" for env, fp in self._touched)
        logger.debug("committing run: %d touched entries", len(touched))

        if self.is_remote:
            # the server assigns the sequence number under its transaction;
            # the idempotency key on the RPC keeps a retried commit from
            # recording the run twice
            with trace.span("store.commit_run", cat="store", touched=len(touched)):
                self.backend.commit_run(touched)
            self._touched.clear()
            return len(touched)

        def append_run(entries, runs):
            runs, _ = append_run_record(runs, touched)
            return entries, runs

        with trace.span("store.commit_run", cat="store", touched=len(touched)):
            state = self.backend.update(append_run, entries=False)
        self._runs = state.runs
        self._touched.clear()
        return len(touched)

    def gc(self, keep_last: int) -> int:
        """Expire entries unreferenced by the last ``keep_last`` runs.

        Content addressing already guarantees stale entries can never be
        *hit*; GC is about space — spec edits, renamed methods and abandoned
        experiments leave verdicts nothing will ever look up again.  An entry
        survives iff one of the last ``keep_last`` committed runs referenced
        it (hit it or wrote it), so everything those runs warm-started from
        still warm-starts after the sweep.  The reference set and the victims
        are computed from the state re-read under the exclusive lock —
        entries and runs a concurrent process committed meanwhile are part of
        the sweep, never casualties of a stale snapshot.  Returns the number
        of entries dropped; older run records are dropped from the log too.
        """
        if keep_last < 1:
            raise ValueError("gc requires keep_last >= 1")
        if self.shard_output is not None:
            return 0
        if self._touched:
            # an uncommitted session counts as the most recent run
            self.commit_run()
        if self.is_remote:
            dropped = self.backend.gc(keep_last)
            # the client cannot know which mirrored entries survived the
            # server-side sweep; forget the mirror and re-fetch lazily
            self._entries.clear()
            self._remote_checked.clear()
            self._session_writes.clear()
            self._pending.clear()
            return dropped
        dropped = 0

        def sweep(entries, runs):
            nonlocal dropped
            entries.update(self._session_writes)
            entries, kept_runs, stale = sweep_unreferenced(entries, runs, keep_last)
            dropped = len(stale)
            for key in stale:
                self._session_writes.pop(key, None)
            return entries, kept_runs

        self._adopt(self.backend.update(sweep))
        self._pending.clear()
        return dropped

    # -- shard merging ---------------------------------------------------------------
    def shard_files(self) -> list[Path]:
        shard_dir = self.backend.shard_dir
        if not shard_dir.is_dir():
            return []

        def index_of(p: Path) -> int:
            try:
                return int(p.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                return 1 << 30

        return sorted(shard_dir.glob("shard-*.jsonl"), key=index_of)

    def absorb_shards(self) -> int:
        """Merge shard outputs into the main log, deterministically.

        Files are read in shard-index order; within a file, line order.  Shard
        assignment partitions fingerprints, so collisions only arise against
        pre-existing entries — which already carry the same content — making
        the merge order-insensitive in value, deterministic in bytes.  A
        shard file ending in a torn partial line (a killed worker, mid-
        append) costs exactly the torn entry: decode failures are skipped and
        counted (``summary()["skipped"]``), never allowed to abort the merge
        and discard the healthy shards.
        """
        absorbed = 0
        for shard_file in self.shard_files():
            for line in shard_file.read_bytes().splitlines():
                if not line.strip():
                    continue
                try:
                    entry = StoreEntry.from_json(line.decode("utf-8"))
                except ENTRY_DECODE_ERRORS:
                    self.skipped_records += 1
                    continue
                if entry.key not in self._entries:
                    self.record(entry)
                    absorbed += 1
            shard_file.unlink()
        self.flush()
        return absorbed

    # -- misc ------------------------------------------------------------------------
    def __len__(self) -> int:
        if self.is_remote:
            # the server's count, as of the most recent response carrying one
            return self.backend.entries_total
        return len(self._entries)

    def __iter__(self) -> Iterator[StoreEntry]:
        # remote sessions iterate their mirror: the entries fetched or
        # written this session, not the server's full state
        return iter(self._entries.values())

    def entries_for_scope(self, scope: str) -> list[StoreEntry]:
        return [entry for entry in self._entries.values() if entry.scope == scope]
