"""The sharded suite runner: ``--shards N`` must never change the tables."""

import pytest

from repro.engine import scheduler
from repro.evaluation.runner import run_evaluation
from repro.evaluation.tables import table1, table3, table4
from repro.store import shard as shard_mod
from repro.store.obligation_store import ObligationStore
from repro.store.shard import run_sharded_evaluation
from repro.suite.registry import benchmark_by_key
from repro.typecheck.checker import CheckerConfig


def _subset():
    return [benchmark_by_key("Set/KVStore"), benchmark_by_key("Stack/KVStore")]


def _verdicts(report):
    return [
        (stats.adt, result.method, result.verified, result.error)
        for stats in report.adt_stats
        for result in stats.method_results
    ] + [
        (negative.benchmark, negative.variant, negative.rejected)
        for negative in report.negative_results
    ]


def test_sharded_run_matches_serial_byte_identical(store_path):
    serial = run_evaluation(_subset())
    store = ObligationStore(store_path)
    sharded = run_sharded_evaluation(2, store, benchmarks=_subset())

    assert _verdicts(sharded) == _verdicts(serial)
    for render in (table1, table3, table4):
        assert render(sharded, deterministic=True) == render(serial, deterministic=True)
    assert len(store) > 0
    assert store.shard_files() == [], "shard files are merged and removed"
    # phase 2 runs warm off the merged shards: nothing left to discharge
    assert store.summary()["misses"] == 0


def test_shard_partition_is_disjoint_and_total(tmp_path, store_backend):
    """Each obligation is discharged by exactly one shard worker."""
    cold_store = ObligationStore(tmp_path / "cold")
    run_evaluation(_subset(), store=cold_store)

    sharded_store = ObligationStore(tmp_path / "sharded")
    run_sharded_evaluation(3, sharded_store, benchmarks=_subset())
    assert {entry.key for entry in sharded_store} == {entry.key for entry in cold_store}


def test_shard_config_partitions_discharge_work():
    """In-process check: ``shard=(k, N)`` discharges exactly its own slice."""
    bench = benchmark_by_key("Set/KVStore")
    serial_checker = bench.make_checker()
    bench.verify_all(serial_checker)
    serial_discharged = serial_checker.obligation_engine.stats.obligations_discharged

    per_shard = []
    for index in (0, 1):
        checker = bench.make_checker(CheckerConfig(shard=(index, 2)))
        bench.verify_all(checker)
        per_shard.append(checker.obligation_engine.stats)
    assert all(stats.shard_skipped > 0 for stats in per_shard), (
        "both shards must actually skip foreign obligations"
    )
    # the unique obligations are partitioned: summed across shards, exactly
    # the serial engine's discharge count
    assert (
        sum(stats.obligations_discharged for stats in per_shard) == serial_discharged
    )


def test_sharded_falls_back_without_fork(store_path, monkeypatch):
    monkeypatch.setattr(shard_mod, "_fork_available", lambda: False)
    store = ObligationStore(store_path)
    report = run_sharded_evaluation(4, store, benchmarks=_subset())
    assert report.all_verified
    assert len(store) > 0


def test_sharded_requires_a_store():
    with pytest.raises(ValueError):
        run_sharded_evaluation(2, None, benchmarks=_subset())
