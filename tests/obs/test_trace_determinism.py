"""Tracing is strictly volatile: traced runs render byte-identical tables.

The acceptance contract of the observability layer: installing a tracer —
across every discharge mode, SAT backend and worker count — may add spans
and wall-clock time but must never move a counter in the deterministic
renderings of Tables 1/3/4.  The integration leg also locks in what a real
traced run must contain: schema-valid spans, per-obligation fingerprints,
worker spans under a pool, and ≥95% of the main process's wall time
attributed to non-structural spans.
"""

import pytest

from repro.evaluation.runner import run_evaluation
from repro.evaluation.tables import table1, table3, table4
from repro.obs import trace
from repro.obs.report import analyze_trace
from repro.obs.schema import validate_trace
from repro.typecheck.checker import CheckerConfig


def _render(report):
    return "\n".join(
        render(report, deterministic=True) for render in (table1, table3, table4)
    )


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    trace.uninstall()
    yield
    trace.uninstall()


@pytest.fixture(scope="module")
def untraced_tables():
    """Reference renderings per (discharge mode, backend), tracing off."""
    trace.uninstall()
    tables = {}
    for mode in ("lazy", "batch", "compiled"):
        for backend in ("dpll", "cdcl"):
            report = run_evaluation(
                include_slow=False,
                config=CheckerConfig(discharge=mode, backend=backend),
            )
            assert report.all_verified and report.all_negatives_rejected
            tables[mode, backend] = _render(report)
    return tables


@pytest.mark.parametrize("backend", ("dpll", "cdcl"))
@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("mode", ("lazy", "batch", "compiled"))
def test_traced_tables_are_byte_identical_to_untraced(
    mode, workers, backend, untraced_tables
):
    with trace.session() as tracer:
        report = run_evaluation(
            include_slow=False,
            config=CheckerConfig(discharge=mode, backend=backend, workers=workers),
        )
    assert report.all_verified and report.all_negatives_rejected
    assert _render(report) == untraced_tables[mode, backend], (
        f"tracing changed a deterministic counter under "
        f"mode={mode} workers={workers} backend={backend}"
    )
    assert tracer.spans, "the traced run must actually have recorded spans"


@pytest.fixture(scope="module")
def traced_pool_run():
    """One traced fast-corpus run on a 4-worker pool, normalised like a file."""
    trace.uninstall()
    with trace.session() as tracer:
        report = run_evaluation(include_slow=False, config=CheckerConfig(workers=4))
    assert report.all_verified
    tracer.counters = {"caches": report.cache_totals()}
    return {
        "meta": tracer.meta_record(),
        "spans": tracer.spans,
        "counters": tracer.counters,
    }


def test_traced_run_is_schema_valid(traced_pool_run):
    assert validate_trace(traced_pool_run) == []


def test_worker_spans_travel_home_under_a_pool(traced_pool_run):
    root_pid = traced_pool_run["meta"]["pid"]
    worker_spans = [
        span for span in traced_pool_run["spans"] if span["pid"] != root_pid
    ]
    assert worker_spans, "pool workers recorded no spans"
    assert {span["name"] for span in worker_spans} >= {"discharge"}


def test_per_obligation_spans_are_keyed_by_store_fingerprint(traced_pool_run):
    fingerprints = {
        span["args"]["obligation_fp"]
        for span in traced_pool_run["spans"]
        if span.get("args", {}).get("obligation_fp")
    }
    assert len(fingerprints) > 10, "discharge spans must carry store fingerprints"
    assert all(len(fp) == 32 for fp in fingerprints), "fingerprint = store digest"


def test_coverage_of_a_traced_run_meets_the_acceptance_bar(traced_pool_run):
    summary = analyze_trace(traced_pool_run)
    assert summary["wall"] > 0
    assert summary["coverage"] >= 0.95, (
        f"only {summary['coverage']:.1%} of wall time is attributed to "
        "non-structural spans (acceptance bar: 95%)"
    )
