"""Shared fixtures for the benchmark harness.

The harness regenerates the data behind the paper's Tables 1–4.  The
FileSystem/KVStore row is by far the most expensive (minutes per method, as
in the paper); it is only exercised when ``PYMARPLE_FULL=1`` is set so that a
default benchmark run stays within a few minutes.
"""

import os

import pytest

from repro.suite.registry import all_benchmarks


def include_slow() -> bool:
    return os.environ.get("PYMARPLE_FULL", "0") == "1"


def corpus_param(bench, *values, id):
    """A parametrize entry carrying the ``slow`` marker for slow-corpus rows.

    Slow rows only appear when ``PYMARPLE_FULL=1``; the marker lets a full run
    still deselect them with ``-m "not slow"``.
    """
    marks = [pytest.mark.slow] if bench.slow else []
    return pytest.param(*values, id=id, marks=marks)


@pytest.fixture(scope="session")
def corpus():
    """The benchmark corpus used for the table benchmarks."""
    return all_benchmarks(include_slow=include_slow())


def pytest_report_header(config):
    scope = "full corpus (PYMARPLE_FULL=1)" if include_slow() else "fast corpus (set PYMARPLE_FULL=1 for FileSystem)"
    return f"pymarple benchmark harness — {scope}"
