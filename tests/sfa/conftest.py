"""Shared fixtures for the SFA test-suite: a tiny Set-library alphabet."""

import pytest

from repro import smt
from repro.smt import sorts
from repro.sfa import EventSignature, OperatorRegistry


@pytest.fixture(scope="session")
def set_ops() -> OperatorRegistry:
    """The Set library of the paper: ``insert : Elem -> unit``, ``mem : Elem -> bool``."""
    registry = OperatorRegistry()
    registry.declare("insert", [("x", sorts.ELEM)], sorts.UNIT)
    registry.declare("mem", [("x", sorts.ELEM)], smt.BOOL)
    return registry


@pytest.fixture(scope="session")
def kv_ops() -> OperatorRegistry:
    """The KVStore library: put / exists / get over paths and bytes."""
    registry = OperatorRegistry()
    registry.declare("put", [("key", sorts.PATH), ("value", sorts.BYTES)], sorts.UNIT)
    registry.declare("exists", [("key", sorts.PATH)], smt.BOOL)
    registry.declare("get", [("key", sorts.PATH)], sorts.BYTES)
    return registry


@pytest.fixture()
def solver() -> smt.Solver:
    return smt.Solver()
