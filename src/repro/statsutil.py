"""Field-driven merge/snapshot for the statistics dataclasses.

Every statistics table in the pipeline (:class:`repro.smt.solver.SolverStats`,
:class:`repro.sfa.inclusion.InclusionStats`, the obligation engine's counters)
is a flat dataclass of numeric counters that needs the same three operations:
``merge`` (pointwise sum, used when per-worker results flow back into the
parent tables), ``snapshot`` (a copy used for before/after deltas), and a
plain-``dict`` round-trip (used to ship counters across the process-pool
boundary, where only picklable builtins travel).

They used to be hand-maintained per class, which silently dropped any newly
added counter from ``merge``; deriving them from ``dataclasses.fields`` makes
that mistake impossible.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, TypeVar

T = TypeVar("T", bound="MergeableStats")


class MergeableStats:
    """Mixin for dataclasses whose fields are all summable counters."""

    def merge(self: T, other: T) -> None:
        """Pointwise-add every field of ``other`` into ``self``."""
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def snapshot(self: T) -> T:
        """An independent copy (for before/after deltas)."""
        return dataclasses.replace(self)  # type: ignore[type-var]

    def since(self: T, before: T) -> T:
        """The delta accumulated since ``before`` was snapshotted."""
        return type(self)(
            **{
                f.name: getattr(self, f.name) - getattr(before, f.name)
                for f in dataclasses.fields(self)  # type: ignore[arg-type]
            }
        )

    def as_dict(self) -> dict[str, Any]:
        """A picklable plain-dict view (process-pool transport)."""
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)  # type: ignore[arg-type]
        }

    @classmethod
    def from_dict(cls: type[T], data: Mapping[str, Any]) -> T:
        """Rebuild from :meth:`as_dict` output, ignoring unknown keys."""
        names = {f.name for f in dataclasses.fields(cls)}  # type: ignore[arg-type]
        return cls(**{k: v for k, v in data.items() if k in names})
