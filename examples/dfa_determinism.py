"""DFA determinism (Example 4.5): transitions over a stateful graph library.

``add_transition`` may only install an edge for ``(state, character)`` when no
live edge for that pair exists; the invariant I_DFA(n, c) forbids two
connects of the same pair without an intervening disconnect.  The example
verifies the ADT, shows the rejection of an unchecked ``add_transition``, and
drives the verified automaton construction dynamically.

Run with:  python examples/dfa_determinism.py
"""

from repro.sfa.events import Trace
from repro.suite.dfa_graph import dfa_graph


def main() -> None:
    bench = dfa_graph()
    print(f"benchmark: {bench.key}")
    print(f"invariant (ghosts n, c): {bench.invariant_description}\n")

    checker = bench.make_checker()
    for method in bench.specs:
        result = bench.verify_method(method, checker)
        status = "VERIFIED" if result.verified else f"REJECTED ({result.error})"
        print(
            f"{method:>16}: {status}  "
            f"[#SAT={result.stats.smt_queries}, #FA⊆={result.stats.fa_inclusion_checks}, "
            f"avg sFA={result.stats.average_fa_size:.0f}]"
        )

    rejected = bench.verify_negative_variant("add_transition_bad", checker)
    print(f"\nadd_transition_bad: verified = {rejected.verified} (expected False)")

    # build a tiny two-state automaton dynamically
    interpreter = bench.interpreter()
    module = bench.module(interpreter)
    trace = Trace()
    trace = interpreter.call(module["add_state"], ["q0"], trace).trace
    trace = interpreter.call(module["add_state"], ["q1"], trace).trace
    first = interpreter.call(module["add_transition"], ["q0", "a", "q1"], trace)
    second = interpreter.call(module["add_transition"], ["q0", "a", "q0"], first.trace)
    print(f"\nadd q0 --a--> q1: {first.value}")
    print(f"add q0 --a--> q0 while the first edge is live: {second.value} (refused)")
    removed = interpreter.call(module["del_transition"], ["q0", "a", "q1"], second.trace)
    third = interpreter.call(module["add_transition"], ["q0", "a", "q0"], removed.trace)
    print(f"after deleting the old edge, add q0 --a--> q0: {third.value}")
    print(f"final trace: {third.trace}")


if __name__ == "__main__":
    main()
