"""Witness-replay sanity check for the REJECTED negative variants.

Static rejection produces a symbolic counterexample trace (one minterm
description per event).  This suite closes the loop dynamically: it *executes*
each known-bad method through :mod:`repro.lang.interp` with concrete values
mirroring the witness, and asserts that the concrete trace the interpreter
produces genuinely violates the representation invariant (via the Fig. 7
acceptance semantics), while every proper prefix before the violating call
still satisfied it.  The witness is also checked for shape: every step names a
real library operator, and its operator word is contained in the replayed
trace's.
"""

from collections import Counter
from itertools import product

import pytest

from repro import smt
from repro.lang import ast
from repro.lang.interp import Closure, StuckError, module_environment
from repro.sfa import symbolic
from repro.sfa.events import Trace
from repro.smt.sorts import BOOL, INT, UNIT
from repro.suite.registry import all_benchmarks
from repro.types.rtypes import FunType

FAST_NEGATIVES = [
    (bench.key, variant)
    for bench in all_benchmarks(include_slow=False)
    for variant in bench.negative_variants
]


def _benchmark(key):
    return next(b for b in all_benchmarks(include_slow=False) if b.key == key)


def _concrete_value(sort, position):
    if sort is UNIT:
        return ()
    if sort is BOOL:
        return True
    if sort is INT:
        return position
    return f"{sort.name.lower()}{position}"  # a fresh token per parameter


def _trivial_thunk():
    return Closure("w", ast.Ret(ast.Const(())), {})


def _ghost_bindings(bench, values_by_sort):
    """Every assignment of observed concrete values to the ghost variables."""
    candidates = [values_by_sort.get(sort.name, [None]) for _, sort in bench.ghosts]
    for combo in product(*candidates):
        yield {
            smt.var(name, sort): value
            for (name, sort), value in zip(bench.ghosts, combo)
        }


def _violates_invariant(bench, trace, values_by_sort):
    interpretation = bench.library.interpretation()
    return any(
        not symbolic.accepts(bench.invariant, trace, binding, interpretation)
        for binding in _ghost_bindings(bench, values_by_sort)
    )


def _replay_bad_method(bench, variant, max_calls=3):
    """Drive the bad method through the interpreter until the invariant breaks.

    Returns ``(violating_trace, previous_trace)`` — the first concrete trace
    that violates the invariant and the trace just before the violating call.
    """
    source, spec_name = bench.negative_variants[variant]
    spec = bench.specs[spec_name]
    interpreter = bench.interpreter()
    environment = module_environment(bench.parse_variant(source), interpreter)
    function = environment[variant]

    args, values_by_sort = [], {}
    for position, (_, param_type) in enumerate(spec.params):
        if isinstance(param_type, FunType):
            args.append(_trivial_thunk())  # an already-forced, event-free thunk
        else:
            value = _concrete_value(param_type.sort, position)
            values_by_sort.setdefault(param_type.sort.name, []).append(value)
            args.append(value)

    trace = Trace()
    for _ in range(max_calls):
        previous = trace
        result = interpreter.call(function, args, trace)
        trace = result.trace
        if isinstance(result.value, Closure):
            # thunk-returning methods (LazySet): force the result to realise
            # its delayed effects, and thread it into the next call
            forced = interpreter.call(result.value, [()], trace)
            trace = forced.trace
            args = [
                result.value if isinstance(arg, Closure) else arg for arg in args
            ]
        if _violates_invariant(bench, trace, values_by_sort):
            return trace, previous, values_by_sort
    raise AssertionError(
        f"replaying {bench.key}.{variant} {max_calls} times never broke the invariant"
    )


@pytest.mark.parametrize("key,variant", FAST_NEGATIVES)
def test_witness_replays_to_a_genuine_violation(key, variant):
    bench = _benchmark(key)
    result = bench.verify_negative_variant(variant)
    assert not result.verified
    assert result.counterexample, "a rejection must carry a witness trace"

    operator_names = set(bench.library.operators.names())
    witness_ops = [step.split("(", 1)[0] for step in result.counterexample]
    assert witness_ops and all(op in operator_names for op in witness_ops)

    trace, previous, values_by_sort = _replay_bad_method(bench, variant)
    # the concrete trace the interpreter produced genuinely violates the
    # invariant, and did not violate it before the last (bad) call
    assert _violates_invariant(bench, trace, values_by_sort)
    assert not _violates_invariant(bench, previous, values_by_sort)
    assert not _violates_invariant(bench, Trace(), values_by_sort)

    # the symbolic witness is a sub-word of the concrete violation: the
    # static counterexample predicted the operators the replay performed
    replayed_ops = Counter(event.op for event in trace.events)
    assert not (Counter(witness_ops) - replayed_ops), (
        f"witness {witness_ops} mentions operators the replay never performed "
        f"({[e.op for e in trace.events]})"
    )


@pytest.mark.parametrize(
    "key", sorted({key for key, _ in FAST_NEGATIVES})
)
def test_good_methods_do_not_violate_dynamically(key):
    """Control: the verified sibling methods keep the invariant when replayed."""
    bench = _benchmark(key)
    interpreter = bench.interpreter()
    environment = bench.module(interpreter)
    for method, spec in bench.specs.items():
        args, values_by_sort = [], {}
        for position, (_, param_type) in enumerate(spec.params):
            if isinstance(param_type, FunType):
                args.append(_trivial_thunk())
            else:
                value = _concrete_value(param_type.sort, position)
                values_by_sort.setdefault(param_type.sort.name, []).append(value)
                args.append(value)
        trace = Trace()
        for _ in range(3):
            try:
                result = interpreter.call(environment[method], args, trace)
            except StuckError:
                break  # precondition unmet (e.g. Stack.next on an empty chain)
            trace = result.trace
            if isinstance(result.value, Closure):
                forced = interpreter.call(result.value, [()], trace)
                trace = forced.trace
                args = [
                    result.value if isinstance(arg, Closure) else arg for arg in args
                ]
            assert not _violates_invariant(bench, trace, values_by_sort), (
                f"{bench.key}.{method} broke its invariant under dynamic replay"
            )
