"""The cross-obligation reuse layers: alphabet memo and derivative cache.

The :class:`~repro.sfa.alphabet.AlphabetMemo` must (a) actually share minterm
enumerations between distinct formulas with the same literal sets, (b) replay
the recorded counter bill on a hit so a hit and a rebuild are
indistinguishable in every statistic, and (c) stay bounded.  The
:class:`~repro.sfa.derivatives.DerivativeCache` is pure reuse: identical
verdicts and witnesses with or without it, hits across searches, bounded.
"""

import pytest

from repro import smt
from repro.smt.solver import SolverStats
from repro.smt.sorts import ELEM
from repro.libraries.setlib import make_set
from repro.sfa import symbolic as S
from repro.sfa.alphabet import AlphabetMemo, AlphabetStats, collect_literals
from repro.sfa.derivatives import DerivativeCache, lazy_inclusion_search
from repro.sfa.inclusion import InclusionChecker


@pytest.fixture()
def setlib():
    return make_set(ELEM)


def _insert_event(library, var_name):
    insert = library.operators["insert"]
    x = smt.var(var_name, ELEM)
    return S.event_pinned(insert, {"x": x}), x


def _formulas(library):
    """Two structurally different formula pairs over the same literal set."""
    ev, x = _insert_event(library, "pm_x")
    a = S.globally(S.implies(ev, S.next_(S.not_(S.eventually(ev)))))
    b = S.eventually(ev)
    c = S.concat(a, S.and_(ev, S.last()))
    d = S.or_(b, S.next_(b))
    return (a, b), (c, d)


def test_memo_shares_builds_across_distinct_formulas(setlib):
    memo = AlphabetMemo()
    first, second = _formulas(setlib)
    assert collect_literals(list(first), setlib.operators).fingerprint() == (
        collect_literals(list(second), setlib.operators).fingerprint()
    )
    alphabets_one, built_one = memo.alphabets_for([], list(first), setlib.operators)
    alphabets_two, built_two = memo.alphabets_for([], list(second), setlib.operators)
    assert built_one and not built_two
    assert memo.builds == 1 and memo.hits == 1
    assert alphabets_one is alphabets_two  # the shared construction itself


def test_memo_hit_replays_identical_counters(setlib):
    """A hit merges byte-identical numbers to the build it reuses."""
    first, second = _formulas(setlib)

    build_solver_stats, build_alphabet_stats = SolverStats(), AlphabetStats()
    memo = AlphabetMemo()
    memo.alphabets_for(
        [], list(first), setlib.operators,
        stats=build_alphabet_stats, solver_stats=build_solver_stats,
    )

    hit_solver_stats, hit_alphabet_stats = SolverStats(), AlphabetStats()
    memo.alphabets_for(
        [], list(second), setlib.operators,
        stats=hit_alphabet_stats, solver_stats=hit_solver_stats,
    )
    assert hit_alphabet_stats.as_dict() == build_alphabet_stats.as_dict()
    replayed = hit_solver_stats.as_dict()
    original = build_solver_stats.as_dict()
    assert {k: v for k, v in replayed.items() if k != "time_seconds"} == {
        k: v for k, v in original.items() if k != "time_seconds"
    }


def test_disabled_memo_still_builds_hermetically(setlib):
    """``enabled=False`` turns off reuse only: every call builds, counters match."""
    first, second = _formulas(setlib)
    memo = AlphabetMemo(enabled=False)
    on_stats = SolverStats()
    memo.alphabets_for([], list(first), setlib.operators, solver_stats=on_stats)
    off_stats = SolverStats()
    memo.alphabets_for([], list(second), setlib.operators, solver_stats=off_stats)
    assert memo.builds == 2 and memo.hits == 0 and len(memo) == 0
    assert {k: v for k, v in on_stats.as_dict().items() if k != "time_seconds"} == {
        k: v for k, v in off_stats.as_dict().items() if k != "time_seconds"
    }


def test_memo_key_distinguishes_hypotheses(setlib):
    memo = AlphabetMemo()
    (a, b), _ = _formulas(setlib)
    _, x = _insert_event(setlib, "pm_x")
    y = smt.var("pm_y", ELEM)
    _, first_built = memo.alphabets_for([], [a, b], setlib.operators)
    _, second_built = memo.alphabets_for([smt.eq(x, y)], [a, b], setlib.operators)
    assert first_built and second_built
    assert memo.builds == 2


def test_memo_size_cap_evicts_wholesale(setlib):
    memo = AlphabetMemo(max_entries=2)
    (a, b), _ = _formulas(setlib)
    _, x = _insert_event(setlib, "pm_x")
    variants = [[], [smt.eq(x, smt.var("pm_cap0", ELEM))], [smt.eq(x, smt.var("pm_cap1", ELEM))]]
    for hypotheses in variants:
        memo.alphabets_for(hypotheses, [a, b], setlib.operators)
    assert memo.evictions >= 1
    assert len(memo) <= 2


def test_checker_threads_memo_counters_into_stats(setlib):
    (a, b), (c, d) = _formulas(setlib)
    memo = AlphabetMemo()
    checker = InclusionChecker(smt.Solver(), setlib.operators, alphabet_memo=memo)
    checker.check([], a, b)
    checker.check([], c, d)
    assert checker.stats.alphabet_builds == 1
    assert checker.stats.alphabet_memo_hits == 1


# ---------------------------------------------------------------------------
# Derivative cache
# ---------------------------------------------------------------------------


def _alphabet_for(setlib, lhs, rhs):
    from repro.sfa.alphabet import build_alphabets

    alphabets = build_alphabets(smt.Solver(), [], [lhs, rhs], setlib.operators)
    assert alphabets
    return alphabets[0]


def _uniqueness_pairs(setlib):
    """Obligation-shaped searches that genuinely walk the product.

    Mirrors the Set uniqueness invariant: a fresh insert preserves it (the
    included direction explores), a non-fresh insert violates it (the witness
    direction explores before finding the counterexample).  Both sides share
    the invariant, which is exactly the cross-search reuse the cache targets.
    """
    insert = setlib.operators["insert"]
    x = smt.var("pm_x", ELEM)
    el = smt.var("pm_el", ELEM)
    ev = S.event_pinned(insert, {"x": x})
    ev_el = S.event_pinned(insert, {"x": el})
    invariant = S.globally(S.implies(ev_el, S.next_(S.not_(S.eventually(ev_el)))))
    fresh = S.and_(invariant, S.not_(S.eventually(ev)))
    good = S.concat(fresh, S.and_(ev, S.last()))
    bad = S.concat(invariant, S.and_(ev, S.last()))
    return invariant, good, bad


def test_derivative_cache_agrees_with_uncached_search(setlib):
    invariant, good, bad = _uniqueness_pairs(setlib)
    cache = DerivativeCache()
    for lhs, rhs in ((good, invariant), (bad, invariant), (invariant, good)):
        alphabet = _alphabet_for(setlib, lhs, rhs)
        plain = lazy_inclusion_search(lhs, rhs, alphabet)
        cached = lazy_inclusion_search(lhs, rhs, alphabet, cache=cache)
        assert cached == plain  # witness AND explored-pair count


def test_derivative_cache_hits_across_searches(setlib):
    invariant, good, bad = _uniqueness_pairs(setlib)
    cache = DerivativeCache()
    alphabet = _alphabet_for(setlib, good, invariant)
    lazy_inclusion_search(good, invariant, alphabet, cache=cache)
    assert cache.misses > 0 and cache.hits == 0
    misses_after_first = cache.misses
    # a different obligation over the same alphabet shares the invariant
    # side (and every converged derivative): its steps replay from the cache
    lazy_inclusion_search(bad, invariant, alphabet, cache=cache)
    assert cache.hits > 0
    assert cache.misses >= misses_after_first  # fresh sides still miss


def test_derivative_cache_cap_and_eviction_counter(setlib):
    invariant, good, _ = _uniqueness_pairs(setlib)
    cache = DerivativeCache(max_entries=4)
    alphabet = _alphabet_for(setlib, good, invariant)
    lazy_inclusion_search(good, invariant, alphabet, cache=cache)
    assert cache.evictions >= 1
    assert len(cache) <= 4


def test_derivative_cache_interning_tables_are_bounded(setlib):
    """The interning side tables are capped too, and a wipe can never make a
    stale id alias a fresh one (ids are monotonic across evictions)."""
    invariant, good, bad = _uniqueness_pairs(setlib)
    cache = DerivativeCache(max_interned=1)
    alphabet = _alphabet_for(setlib, good, invariant)
    first_ids = cache.keys_for(alphabet)
    assert cache.keys_for(alphabet) == first_ids  # cached while resident

    insert = setlib.operators["insert"]
    z = smt.var("pm_intern_z", ELEM)
    ev_z = S.event_pinned(insert, {"x": z})
    other = _alphabet_for(setlib, S.eventually(ev_z), S.globally(ev_z))
    assert other.fingerprint() != alphabet.fingerprint()
    cache.keys_for(other)  # crosses the cap: tables wiped, eviction counted
    assert cache.evictions >= 1
    assert len(cache._alphabet_keys) <= 1

    reinterned = cache.keys_for(alphabet)
    assert reinterned != first_ids, "wiped ids must never be reissued"
    # correctness across the wipe: searches still agree with the uncached walk
    cached = lazy_inclusion_search(good, invariant, alphabet, cache=cache)
    assert cached == lazy_inclusion_search(good, invariant, alphabet)


def test_dfa_cache_eviction_counter():
    from repro.sfa.automata import Dfa
    from repro.sfa.derivatives import DfaCache

    cache = DfaCache(max_entries=2)
    dfa = Dfa(num_chars=1, transitions=[[0]], accepting=frozenset(), start=0)
    for i in range(3):
        cache.put((i,), dfa)
    assert cache.evictions == 1
    assert len(cache) <= 2


def test_solver_cache_eviction_counter():
    solver = smt.Solver(max_cache_entries=2)
    x = smt.var("pm_ev_x", ELEM)
    for i in range(4):
        y = smt.var(f"pm_ev_{i}", ELEM)
        solver.is_satisfiable(smt.eq(x, y))
    assert solver.stats.cache_evictions >= 1
