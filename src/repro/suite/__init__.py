"""repro.suite — the evaluation corpus: ADT implementations plus specifications."""

from .benchmark import AdtBenchmark
from .registry import BENCHMARK_FACTORIES, all_benchmarks, benchmark_by_key

__all__ = ["AdtBenchmark", "BENCHMARK_FACTORIES", "all_benchmarks", "benchmark_by_key"]
