"""Formatters that render the evaluation results in the layout of Tables 1–4."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..suite.benchmark import AdtBenchmark
from ..suite.registry import all_benchmarks
from .runner import EvaluationReport


def _render(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    out = [line(headers), "-+-".join("-" * w for w in widths)]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


TABLE1_COLUMNS = [
    "ADT",
    "Library",
    "#Method",
    "#Ghost",
    "sI",
    "ttotal (s)",
    "#Branch",
    "#App",
    "#Obl",
    "#SAT",
    "#SATcache",
    "#FA⊆",
    "#FAcache",
    "#Prod",
    "avg. sFA",
    "tSAT (s)",
    "tFA⊆ (s)",
    "verified",
]


def table1(report: EvaluationReport) -> str:
    """Table 1: per-ADT summary plus the most complex method's statistics."""
    rows = []
    for stats in report.adt_stats:
        row = stats.as_row()
        rows.append([row.get(column, "") for column in TABLE1_COLUMNS])
    return _render(TABLE1_COLUMNS, rows)


TABLE2_COLUMNS = ["Client ADT", "Underlying Library", "Representation invariant / policy"]


def table2(benchmarks: Optional[Sequence[AdtBenchmark]] = None) -> str:
    """Table 2: the representation invariants of the corpus (descriptive)."""
    if benchmarks is None:
        benchmarks = all_benchmarks()
    rows = [
        [benchmark.adt, benchmark.library_name, benchmark.invariant_description]
        for benchmark in benchmarks
    ]
    return _render(TABLE2_COLUMNS, rows)


TABLE34_COLUMNS = [
    "Datatype",
    "Library",
    "#Ghost",
    "sI",
    "Method",
    "#Branch",
    "#App",
    "#Obl",
    "#SAT",
    "#SATcache",
    "#Inc",
    "#FAcache",
    "#Prod",
    "sFAbuilt",
    "avg. sFA",
    "tSAT (s)",
    "tInc (s)",
    "verified",
]

#: The split of ADTs between the paper's Table 3 and Table 4.
TABLE3_ADTS = ("Stack", "Set", "Queue", "MinSet", "LazySet")
TABLE4_ADTS = ("Heap", "FileSystem", "DFA", "ConnectedGraph")


def _per_method_table(report: EvaluationReport, adts: Sequence[str]) -> str:
    rows = []
    for row in report.per_method_rows():
        if row["Datatype"] not in adts:
            continue
        rows.append([row.get(column, "") for column in TABLE34_COLUMNS])
    return _render(TABLE34_COLUMNS, rows)


def table3(report: EvaluationReport) -> str:
    """Table 3: per-method details for the first half of the corpus."""
    return _per_method_table(report, TABLE3_ADTS)


def table4(report: EvaluationReport) -> str:
    """Table 4: per-method details for the second half of the corpus."""
    return _per_method_table(report, TABLE4_ADTS)


def negatives_table(report: EvaluationReport) -> str:
    """Rejection results for the known-incorrect variants (Example 2.1 etc.)."""
    headers = ["Benchmark", "Variant", "Rejected"]
    rows = [
        [result.benchmark, result.variant, result.rejected]
        for result in report.negative_results
    ]
    return _render(headers, rows)


def render_all(report: EvaluationReport) -> str:
    sections = [
        ("Table 1 — per-ADT summary", table1(report)),
        ("Table 2 — representation invariants", table2()),
        ("Table 3 — per-method details (Stack/Set/Queue/MinSet/LazySet)", table3(report)),
        ("Table 4 — per-method details (Heap/FileSystem/DFA/ConnectedGraph)", table4(report)),
        ("Known-incorrect variants", negatives_table(report)),
    ]
    blocks = []
    for title, body in sections:
        blocks.append(f"== {title} ==\n{body}")
    return "\n\n".join(blocks)
