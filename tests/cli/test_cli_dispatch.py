"""CLI surface for distributed discharge: ``dispatch``, ``worker``, ``store stats``.

The heavy end-to-end path (coordinator + forked workers + byte-identical
tables) lives in ``tests/store/test_distributed.py``; here we pin the
command-line contract — exit codes, required flags, and the two render
modes of ``store stats`` — against a real loopback server.
"""

import json
import threading

import pytest

from repro.cli import main as cli_main
from repro.store.remote import ENV_RPC_RETRIES, ENV_RPC_TIMEOUT
from repro.store.server import StoreHTTPServer, StoreService


@pytest.fixture
def server(tmp_path):
    service = StoreService(tmp_path / "store")
    httpd = StoreHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    thread.join()
    httpd.server_close()
    service.close()


# -- dispatch / evaluate --distributed ---------------------------------------------


def test_dispatch_requires_a_store_url(capsys):
    assert cli_main(["dispatch", "--fast"]) == 2
    assert "--store http://host:port" in capsys.readouterr().err


def test_evaluate_distributed_requires_a_store_url(capsys):
    assert cli_main(["evaluate", "--fast", "--distributed"]) == 2
    assert "--store http://host:port" in capsys.readouterr().err


def test_dispatch_rejects_a_local_store_path(capsys, tmp_path):
    assert cli_main(["dispatch", "--fast", "--store", str(tmp_path / "s")]) == 2
    assert "store *server*" in capsys.readouterr().err


# -- worker ------------------------------------------------------------------------


def test_worker_drains_an_empty_queue_and_exits_zero(server, capsys):
    code = cli_main(
        ["worker", "--store", server.url, "--poll", "0.01", "--idle-exit", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "worker done: 0 leases, 0 items" in out


def test_worker_rejects_a_local_store_path(capsys, tmp_path):
    assert cli_main(["worker", "--store", str(tmp_path / "s")]) == 2
    assert "store *server* URL" in capsys.readouterr().err


# -- store stats -------------------------------------------------------------------


def test_store_stats_json_is_machine_readable(server, capsys):
    assert cli_main(["store", "stats", server.url, "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 0
    assert "queue" in stats and "ops" in stats and "lookup" in stats


def test_store_stats_human_rendering(server, capsys):
    assert cli_main(["store", "stats", server.url]) == 0
    out = capsys.readouterr().out
    assert f"store server {server.url}" in out
    assert "lookup hit rate" in out
    assert "queue: 0 pending" in out
    assert "per-op" in out, "the handshake+stats calls themselves are counted"


def test_store_stats_rejects_a_non_url(capsys, tmp_path):
    assert cli_main(["store", "stats", str(tmp_path / "s")]) == 2
    assert "error" in capsys.readouterr().err


def test_store_stats_reports_an_unreachable_server(capsys, monkeypatch):
    monkeypatch.setenv(ENV_RPC_RETRIES, "1")
    monkeypatch.setenv(ENV_RPC_TIMEOUT, "0.2")
    monkeypatch.setattr("repro.store.remote.time.sleep", lambda _s: None)
    assert cli_main(["store", "stats", "http://127.0.0.1:9"]) == 2
    assert "error" in capsys.readouterr().err
