"""Tests for the backing-library trace models and HAT signature tables."""

import pytest

from repro import smt
from repro.smt.sorts import BOOL, BYTES, ELEM, PATH, UNIT, CHAR, NODE
from repro.lang.interp import StuckError
from repro.libraries import (
    make_file_helpers,
    make_graph,
    make_kvstore,
    make_memcell,
    make_set,
    merge_libraries,
)
from repro.sfa.events import Event, Trace
from repro.types.rtypes import FunType, HatType, Intersection


def test_kvstore_model_semantics():
    library = make_kvstore(PATH, BYTES)
    model = library.model()
    trace = Trace([Event("put", ("/a", "blob"), ()), Event("put", ("/a", "blob2"), ())])
    assert model.apply("exists", trace, ["/a"]) is True
    assert model.apply("exists", trace, ["/b"]) is False
    assert model.apply("get", trace, ["/a"]) == "blob2"
    assert model.apply("put", trace, ["/c", "x"]) == ()
    with pytest.raises(StuckError):
        model.apply("get", trace, ["/missing"])
    with pytest.raises(StuckError):
        model.apply("unknown_op", trace, [])


def test_kvstore_delta_shapes():
    library = make_kvstore(PATH, BYTES)
    assert set(library.delta.operators()) == {"put", "exists", "get"}
    put_type = library.delta["put"]
    assert isinstance(put_type, FunType)
    exists_type = library.delta["exists"]
    assert isinstance(exists_type.result, Intersection)
    assert len(exists_type.result.cases) == 2
    get_type = library.delta["get"]
    assert isinstance(get_type.result, HatType)


def test_kvstore_kind_specialised_get():
    from repro.libraries.filelib import is_del, is_dir, is_file

    kinds = [
        ("dir", lambda v: smt.apply(is_dir, v)),
        ("file", lambda v: smt.apply(is_file, v)),
        ("deleted", lambda v: smt.apply(is_del, v)),
    ]
    library = make_kvstore(PATH, BYTES, get_kinds=kinds)
    get_type = library.delta["get"]
    assert isinstance(get_type.result, Intersection)
    assert len(get_type.result.cases) == 3


def test_set_model_semantics():
    library = make_set(ELEM)
    model = library.model()
    trace = Trace([Event("insert", ("a",), ())])
    assert model.apply("mem", trace, ["a"]) is True
    assert model.apply("mem", trace, ["b"]) is False
    assert model.apply("insert", trace, ["b"]) == ()


def test_graph_model_semantics():
    library = make_graph(NODE, CHAR)
    model = library.model()
    trace = Trace(
        [
            Event("add_node", ("q0",), ()),
            Event("connect", ("q0", "a", "q1"), ()),
            Event("disconnect", ("q0", "a", "q1"), ()),
            Event("connect", ("q0", "b", "q2"), ()),
        ]
    )
    assert model.apply("is_node", trace, ["q0"]) is True
    assert model.apply("is_node", trace, ["q1"]) is False
    assert model.apply("connected", trace, ["q0", "a"]) is False
    assert model.apply("connected", trace, ["q0", "b"]) is True


def test_memcell_model_semantics():
    library = make_memcell()
    model = library.model()
    assert model.apply("write", Trace(), [3]) == ()
    trace = Trace([Event("write", (3,), ()), Event("write", (7,), ())])
    assert model.apply("read", trace, []) == 7
    with pytest.raises(StuckError):
        model.apply("read", Trace(), [])


def test_file_helpers_pure_impls_and_axioms():
    helpers = make_file_helpers()
    impls = helpers.pure_impls
    assert impls["Path.parent"]("/a/b.txt") == "/a"
    assert impls["Path.parent"]("/a") == "/"
    assert impls["Path.parent"]("/") == "/"
    assert impls["Path.isRoot"]("/") is True
    root_dir = impls["File.init"]()
    assert impls["File.isDir"](root_dir)
    child = impls["File.addChild"](root_dir, "/a")
    assert impls["File.isDir"](child) and "/a" in child["children"]
    deleted = impls["File.setDeleted"](child)
    assert impls["File.isDel"](deleted)
    assert not impls["File.isDir"](deleted)
    assert len(helpers.axioms) >= 7
    assert "/" in helpers.constants


def test_merge_libraries_combines_everything():
    merged = merge_libraries("SetAndCell", make_set(ELEM), make_memcell())
    names = merged.effectful_op_names()
    assert set(names) == {"insert", "mem", "read", "write"}
    assert set(merged.delta.operators()) == {"insert", "mem", "read", "write"}
    model = merged.model()
    assert model.apply("mem", Trace(), ["a"]) is False
    assert model.apply("write", Trace(), [1]) == ()


def test_merge_libraries_rejects_conflicting_operators():
    # two libraries declaring `insert` with different signatures cannot be merged
    with pytest.raises(ValueError):
        merge_libraries("Broken", make_set(ELEM), make_set(NODE, name="NodeSet"))
