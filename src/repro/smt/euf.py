"""Congruence closure for the theory of equality with uninterpreted functions.

The solver receives a conjunction of ground literals (atoms with a polarity)
and decides whether they are consistent in EUF.  Method predicates are
handled by treating an asserted atom ``p(t)`` as the equation ``p(t) = true``
(resp. ``false``), so congruent predicate applications with opposite
polarities produce a conflict through the ordinary closure rules.

Distinct integer literals and distinct named data constants are treated as
pairwise different, matching the constant folding performed by
``repro.smt.terms.eq``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from . import terms
from .terms import Term


@dataclass
class EufResult:
    """Outcome of a congruence-closure run."""

    consistent: bool
    #: literals (as passed in) that participate in the conflict; empty when
    #: consistent.  Kept coarse: the full asserted EUF fragment.
    conflict: list[tuple[Term, bool]]


class CongruenceClosure:
    """A union-find based congruence closure engine."""

    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}
        self._terms: list[Term] = []
        self._disequalities: list[tuple[Term, Term]] = []

    # -- union-find ---------------------------------------------------------------
    def _add_term(self, term: Term) -> None:
        if term in self._parent:
            return
        self._parent[term] = term
        self._terms.append(term)
        for child in term.children:
            self._add_term(child)

    def find(self, term: Term) -> Term:
        self._add_term(term)
        root = term
        while self._parent[root] is not root:
            root = self._parent[root]
        # path compression
        node = term
        while self._parent[node] is not node:
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, lhs: Term, rhs: Term) -> None:
        lhs_root, rhs_root = self.find(lhs), self.find(rhs)
        if lhs_root is rhs_root:
            return
        self._parent[lhs_root] = rhs_root

    def assert_equal(self, lhs: Term, rhs: Term) -> None:
        self.union(lhs, rhs)

    def assert_distinct(self, lhs: Term, rhs: Term) -> None:
        self._add_term(lhs)
        self._add_term(rhs)
        self._disequalities.append((lhs, rhs))

    def are_equal(self, lhs: Term, rhs: Term) -> bool:
        self._add_term(lhs)
        self._add_term(rhs)
        self.propagate()
        return self.find(lhs) is self.find(rhs)

    # -- congruence propagation -----------------------------------------------------
    def propagate(self) -> None:
        """Merge congruent applications until a fixpoint is reached."""
        changed = True
        while changed:
            changed = False
            apps = [t for t in self._terms if t.kind == terms.APP]
            signature: dict[tuple, Term] = {}
            for app in apps:
                sig = (app.payload, tuple(self.find(c) for c in app.children))
                other = signature.get(sig)
                if other is None:
                    signature[sig] = app
                elif self.find(other) is not self.find(app):
                    self.union(other, app)
                    changed = True

    # -- consistency ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        self.propagate()
        for lhs, rhs in self._disequalities:
            if self.find(lhs) is self.find(rhs):
                return False
        # distinct interpreted constants must stay in distinct classes
        constants: dict[Term, Term] = {}
        for term in self._terms:
            if term.kind in (terms.INT_CONST, terms.DATA_CONST, terms.BOOL_CONST):
                root = self.find(term)
                other = constants.get(root)
                if other is None:
                    constants[root] = term
                elif not _same_constant(other, term):
                    return False
        return True

    def classes(self) -> dict[Term, list[Term]]:
        """The current partition, keyed by representative."""
        self.propagate()
        out: dict[Term, list[Term]] = {}
        for term in self._terms:
            out.setdefault(self.find(term), []).append(term)
        return out


def _same_constant(lhs: Term, rhs: Term) -> bool:
    if lhs.kind != rhs.kind:
        return False
    return lhs.payload == rhs.payload


def check_euf(literals: Iterable[tuple[Term, bool]]) -> EufResult:
    """Decide consistency of a conjunction of EUF literals.

    ``literals`` are pairs of an atom and the polarity with which it is
    asserted.  Atoms that are not in the EUF fragment (arithmetic comparisons)
    are ignored here and handled by :mod:`repro.smt.arith`.
    """
    closure = CongruenceClosure()
    used: list[tuple[Term, bool]] = []
    for atom, value in literals:
        if atom.kind == terms.EQ:
            lhs, rhs = atom.children
            used.append((atom, value))
            if value:
                closure.assert_equal(lhs, rhs)
            else:
                closure.assert_distinct(lhs, rhs)
        elif atom.kind == terms.APP and atom.sort.is_bool:
            used.append((atom, value))
            closure.assert_equal(atom, terms.TRUE if value else terms.FALSE)
        elif atom.kind == terms.VAR and atom.sort.is_bool:
            used.append((atom, value))
            closure.assert_equal(atom, terms.TRUE if value else terms.FALSE)
        elif atom.kind == terms.DATA_CONST and atom.sort.is_bool:  # pragma: no cover
            used.append((atom, value))
            closure.assert_equal(atom, terms.TRUE if value else terms.FALSE)
        else:
            continue
    closure.assert_distinct(terms.TRUE, terms.FALSE)
    if closure.is_consistent():
        return EufResult(consistent=True, conflict=[])
    return EufResult(consistent=False, conflict=used)


def implied_int_equalities(
    literals: Iterable[tuple[Term, bool]],
    extra_terms: Iterable[Term] = (),
) -> list[tuple[Term, Term]]:
    """Equalities between integer-sorted terms implied by the EUF literals.

    Used by the theory combinator to feed EUF consequences into the linear
    arithmetic solver (a light-weight form of Nelson–Oppen propagation).
    ``extra_terms`` are terms appearing only in arithmetic atoms; registering
    them lets congruence (e.g. ``size(v) = size(w)`` from ``v = w``) reach the
    arithmetic solver.
    """
    closure = CongruenceClosure()
    for term in extra_terms:
        closure._add_term(term)
    for atom, value in literals:
        if atom.kind == terms.EQ and value:
            closure.assert_equal(*atom.children)
        elif atom.kind == terms.APP and atom.sort.is_bool:
            closure.assert_equal(atom, terms.TRUE if value else terms.FALSE)
    out: list[tuple[Term, Term]] = []
    for rep, members in closure.classes().items():
        int_members = [m for m in members if m.sort.is_int]
        for i in range(1, len(int_members)):
            out.append((int_members[0], int_members[i]))
    return out
