"""Trace analysis: phase breakdown, slowest obligations, cache rates.

Backs ``repro trace report``.  Works over the normalised trace dict
returned by :func:`repro.obs.trace.read_trace`, so both on-disk formats
feed the same analysis.

Self-time attribution: each span's *self time* is its duration minus the
summed durations of its direct children (resolved per process, since
every pipeline process is single-threaded; cross-fork roots attach to
the parent-process span they inherited at fork).  Phase totals sum self
time per category, so nested solver spans inside a discharge span count
as solver time, not twice.  Coverage — the acceptance metric — is the
fraction of the main process's wall time attributed to non-structural
spans: ``1 - structural_self_time / wall``.
"""

from __future__ import annotations

from typing import Optional

from .trace import PHASE_CATEGORIES, STRUCTURAL_CATEGORIES


def analyze_trace(data: dict, *, top: int = 10) -> dict:
    """Aggregate a normalised trace into report-ready numbers."""
    spans = [s for s in data.get("spans", []) if isinstance(s, dict)]
    meta = data.get("meta") or {}
    root_pid = meta.get("pid")
    if root_pid is None and spans:
        root_pid = spans[0].get("pid")

    index: dict[tuple, dict] = {}
    for record in spans:
        key = (record.get("pid"), record.get("id"))
        if None not in key:
            index[key] = record

    # Resolve each span's parent: same-pid id first, then the main process
    # (a forked worker's outermost span points at the parent-process span
    # that was open at fork time).
    child_time: dict[tuple, float] = {}
    resolved_parent: dict[tuple, Optional[tuple]] = {}
    for record in spans:
        key = (record.get("pid"), record.get("id"))
        parent_id = record.get("parent")
        parent_key: Optional[tuple] = None
        if parent_id is not None:
            if (record.get("pid"), parent_id) in index:
                parent_key = (record.get("pid"), parent_id)
            elif (root_pid, parent_id) in index:
                parent_key = (root_pid, parent_id)
        resolved_parent[key] = parent_key
        if parent_key is not None:
            child_time[parent_key] = child_time.get(parent_key, 0.0) + float(
                record.get("dur", 0.0)
            )

    # Self time, clamped: a pool span's children run in parallel, so their
    # summed durations may legitimately exceed the parent's duration.
    self_time: dict[tuple, float] = {}
    for record in spans:
        key = (record.get("pid"), record.get("id"))
        self_time[key] = max(0.0, float(record.get("dur", 0.0)) - child_time.get(key, 0.0))

    phases: dict[str, dict] = {}
    structural_self_root = 0.0
    wall = 0.0
    workers: dict[int, float] = {}
    for record in spans:
        key = (record.get("pid"), record.get("id"))
        cat = record.get("cat") or record.get("name") or "other"
        bucket = cat if cat in PHASE_CATEGORIES or cat in STRUCTURAL_CATEGORIES else "other"
        entry = phases.setdefault(bucket, {"cat": bucket, "self": 0.0, "count": 0})
        entry["self"] += self_time[key]
        entry["count"] += 1
        pid = record.get("pid")
        if pid == root_pid:
            if resolved_parent.get(key) is None:
                wall += float(record.get("dur", 0.0))
            if cat in STRUCTURAL_CATEGORIES:
                structural_self_root += self_time[key]
        else:
            workers[pid] = workers.get(pid, 0.0) + self_time[key]

    # Everything under a root span that is not structural self time is
    # attributed work — including pool spans whose self time was eaten by
    # their (parallel, cross-pid) worker children.
    coverage = (1.0 - structural_self_root / wall) if wall > 0 else 0.0

    ordered: list[dict] = []
    for cat in (*PHASE_CATEGORIES, "other", *STRUCTURAL_CATEGORIES):
        if cat in phases:
            entry = phases[cat]
            entry["frac"] = (entry["self"] / wall) if wall > 0 else 0.0
            ordered.append(entry)

    slowest = sorted(
        (
            {
                "fingerprint": record["args"]["obligation_fp"],
                "dur": float(record.get("dur", 0.0)),
                "name": record.get("name"),
                "pid": record.get("pid"),
                "kind": record.get("args", {}).get("kind"),
            }
            for record in spans
            if record.get("args") and "obligation_fp" in record["args"]
        ),
        key=lambda row: row["dur"],
        reverse=True,
    )[: max(0, top)]

    return {
        "wall": wall,
        "coverage": coverage,
        "structural_self": structural_self_root,
        "phases": ordered,
        "workers": dict(sorted(workers.items())),
        "slowest": slowest,
        "counters": data.get("counters"),
        "span_count": len(spans),
        "root_pid": root_pid,
    }


def _rate(hits: float, misses: float) -> str:
    total = hits + misses
    if total <= 0:
        return "n/a"
    return f"{hits / total:.1%}"


def render_report(data: dict, *, top: int = 10) -> str:
    """Human-readable phase/slowest/cache report for ``repro trace report``."""
    summary = analyze_trace(data, top=top)
    lines: list[str] = []
    wall = summary["wall"]
    lines.append(
        f"trace: {summary['span_count']} spans, root pid {summary['root_pid']}, "
        f"wall {wall:.3f}s, attributed coverage {summary['coverage']:.1%}"
    )
    if summary["workers"]:
        worker_bits = ", ".join(
            f"{pid}: {seconds:.3f}s" for pid, seconds in summary["workers"].items()
        )
        lines.append(f"worker self-time ({len(summary['workers'])} pids): {worker_bits}")

    lines.append("")
    lines.append("phase breakdown (self time):")
    lines.append(f"  {'phase':<10} {'self(s)':>9} {'% wall':>7} {'spans':>7}")
    for entry in summary["phases"]:
        lines.append(
            f"  {entry['cat']:<10} {entry['self']:>9.3f} {entry['frac']:>6.1%} "
            f"{entry['count']:>7}"
        )

    lines.append("")
    if summary["slowest"]:
        lines.append(f"slowest obligations (top {len(summary['slowest'])}, by span duration):")
        for row in summary["slowest"]:
            kind = f" kind={row['kind']}" if row.get("kind") else ""
            lines.append(
                f"  {row['dur'] * 1e3:>8.2f} ms  {row['fingerprint']}{kind} "
                f"[{row['name']} pid {row['pid']}]"
            )
    else:
        lines.append("slowest obligations: none recorded (warm run or tracing off)")

    counters = summary.get("counters") or {}
    caches = counters.get("caches") if isinstance(counters, dict) else None
    if caches:
        lines.append("")
        lines.append("cache rates:")
        lines.append(
            "  derivative cache: "
            f"{_rate(caches.get('derivative_cache_hits', 0), caches.get('derivative_cache_misses', 0))} hit "
            f"({caches.get('derivative_cache_hits', 0)} hits / "
            f"{caches.get('derivative_cache_misses', 0)} misses, "
            f"{caches.get('derivative_cache_evictions', 0)} evictions)"
        )
        builds = caches.get("alphabet_memo_builds", 0)
        replays = caches.get("alphabet_memo_replays", 0)
        lines.append(
            "  alphabet memo:    "
            f"{_rate(replays, builds)} replay ({replays} replays / {builds} builds, "
            f"{caches.get('alphabet_memo_evictions', 0)} evictions)"
        )
        extras = {
            key: value
            for key, value in caches.items()
            if not key.startswith(("derivative_cache_", "alphabet_memo_"))
        }
        for key in sorted(extras):
            lines.append(f"  {key}: {extras[key]}")
    store = counters.get("store") if isinstance(counters, dict) else None
    if isinstance(store, dict):
        # the server-side `/stats` snapshot a remote-store run folds in
        lines.append("")
        lines.append("store server:")
        lookup = store.get("lookup") or {}
        requested = lookup.get("requested", 0)
        found = lookup.get("found", 0)
        lines.append(
            f"  lookup hit rate: "
            f"{(found / requested) if requested else 0.0:.1%} "
            f"({found} found / {requested} requested)"
        )
        queue = store.get("queue") or {}
        queue_counters = queue.get("counters") or {}
        if any(queue_counters.values()):
            lines.append(
                f"  queue: {queue_counters.get('enqueued', 0)} enqueued, "
                f"{queue_counters.get('leases_issued', 0)} leases, "
                f"{queue_counters.get('completed', 0)} completed, "
                f"{queue_counters.get('reclaimed', 0)} reclaimed (stolen)"
            )
        ops = store.get("ops") or {}
        for op in sorted(ops):
            record = ops[op]
            lines.append(
                f"  op {op}: {record.get('count', 0)} calls, "
                f"{record.get('replays', 0)} replays, "
                f"{record.get('seconds', 0.0):.3f}s"
            )
    return "\n".join(lines)
