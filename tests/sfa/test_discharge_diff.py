"""Differential tests: lazy on-the-fly discharge vs the compiled oracle.

The lazy product walk (``discharge="lazy"``) must be observationally
identical to the reference Algorithm-1 path that compiles both symbolic
automata to complete DFAs (``discharge="compiled"``):

* identical verdicts on every query,
* identical counterexample traces (the lazy BFS visits derivative pairs in
  the same order the compiled product search visits DFA state pairs, so the
  shortest witness coincides),
* strictly less exploration: the lazy walk's product pairs never exceed the
  states the compiled path materialises (asserted per-benchmark in
  ``benchmarks/test_engine_microbench.py``).

The corpus is the suite's benchmarks plus ≥100 seeded-random SFA pairs.
"""

import random

import pytest

from repro import smt
from repro.smt import sorts
from repro.sfa import symbolic as S
from repro.sfa.alphabet import build_alphabets
from repro.sfa.derivatives import compile_dfa, lazy_inclusion_search
from repro.sfa.inclusion import InclusionChecker
from repro.sfa.signatures import OperatorRegistry
from repro.suite.registry import all_benchmarks

# ---------------------------------------------------------------------------
# Random-case generators (plain `random`, deterministic seeds)
# ---------------------------------------------------------------------------

_PREDICATES = [
    smt.declare(f"dis_p{i}", [sorts.ELEM], smt.BOOL, method_predicate=True)
    for i in range(3)
]
_CTX_VARS = [smt.var(f"dis_c{i}", sorts.ELEM) for i in range(3)]
_INT_VARS = [smt.var(f"dis_n{i}", smt.INT) for i in range(3)]


def _random_registry(rng: random.Random) -> OperatorRegistry:
    registry = OperatorRegistry()
    registry.declare("op_a", [("x", sorts.ELEM)], sorts.UNIT)
    if rng.random() < 0.5:
        registry.declare("op_b", [("y", sorts.ELEM), ("m", smt.INT)], smt.BOOL)
    return registry


def _random_context_literal(rng: random.Random) -> smt.Term:
    kind = rng.randrange(3)
    if kind == 0:
        return smt.apply(rng.choice(_PREDICATES), rng.choice(_CTX_VARS))
    if kind == 1:
        return smt.lt(rng.choice(_INT_VARS), rng.choice(_INT_VARS))
    return smt.eq(rng.choice(_CTX_VARS), rng.choice(_CTX_VARS))


def _random_event_literal(rng: random.Random, signature) -> smt.Term:
    formals = [f for f in signature.formals if f.sort in (smt.INT, sorts.ELEM)]
    if not formals:
        return smt.TRUE
    formal = rng.choice(formals)
    if formal.sort == smt.INT:
        if rng.random() < 0.5:
            return smt.lt(formal, rng.choice(_INT_VARS))
        return smt.le(rng.choice(_INT_VARS), formal)
    if rng.random() < 0.5:
        return smt.apply(rng.choice(_PREDICATES), formal)
    return smt.eq(formal, rng.choice(_CTX_VARS))


def _random_sfa(rng: random.Random, registry, depth: int = 3) -> S.Sfa:
    if depth == 0 or rng.random() < 0.3:
        choice = rng.randrange(4)
        if choice == 0:
            return S.TOP
        if choice == 1:
            signature = rng.choice(list(registry))
            return S.event(signature, _random_event_literal(rng, signature))
        if choice == 2:
            return S.guard(_random_context_literal(rng))
        return S.event(rng.choice(list(registry)), smt.TRUE)
    combinator = rng.randrange(5)
    if combinator == 0:
        return S.and_(_random_sfa(rng, registry, depth - 1), _random_sfa(rng, registry, depth - 1))
    if combinator == 1:
        return S.or_(_random_sfa(rng, registry, depth - 1), _random_sfa(rng, registry, depth - 1))
    if combinator == 2:
        return S.not_(_random_sfa(rng, registry, depth - 1))
    if combinator == 3:
        return S.next_(_random_sfa(rng, registry, depth - 1))
    return S.concat(_random_sfa(rng, registry, depth - 1), _random_sfa(rng, registry, depth - 1))


# ---------------------------------------------------------------------------
# Random differential: ≥ 100 lazy vs compiled inclusion queries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(120))
def test_random_pairs_agree(seed):
    rng = random.Random(424_243 + seed)
    registry = _random_registry(rng)
    lhs = _random_sfa(rng, registry)
    rhs = _random_sfa(rng, registry)
    hypotheses = []
    if rng.random() < 0.3:
        hypothesis = _random_context_literal(rng)
        if not (hypothesis.is_true or hypothesis.is_false):
            hypotheses.append(hypothesis)

    results = {}
    for discharge in ("lazy", "compiled"):
        checker = InclusionChecker(smt.Solver(), registry, discharge=discharge)
        results[discharge] = checker.check_detailed(hypotheses, lhs, rhs)
    assert results["lazy"].included == results["compiled"].included
    assert results["lazy"].counterexample == results["compiled"].counterexample


@pytest.mark.parametrize("seed", range(40))
def test_random_lazy_witnesses_are_genuine(seed):
    """Every lazy counterexample must be accepted by lhs and rejected by rhs."""
    rng = random.Random(9_191_919 + seed)
    registry = _random_registry(rng)
    lhs = _random_sfa(rng, registry)
    rhs = _random_sfa(rng, registry)
    solver = smt.Solver()
    alphabets = build_alphabets(solver, [], [lhs, rhs], registry)
    for alphabet in alphabets:
        witness, explored = lazy_inclusion_search(lhs, rhs, alphabet)
        lhs_dfa = compile_dfa(lhs, alphabet)
        rhs_dfa = compile_dfa(rhs, alphabet)
        if witness is None:
            assert lhs_dfa.is_subset_of(rhs_dfa)
        else:
            assert lhs_dfa.accepts_word(list(witness))
            assert not rhs_dfa.accepts_word(list(witness))
            # the walk never explores more pairs than the compiled product
            _, compiled_explored = lhs_dfa.counterexample_search(rhs_dfa)
            assert explored <= compiled_explored


# ---------------------------------------------------------------------------
# Suite-benchmark differential
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "key", [bench.key for bench in all_benchmarks(include_slow=False)]
)
def test_suite_verification_agrees(key):
    from repro.typecheck.checker import CheckerConfig

    bench = next(b for b in all_benchmarks(include_slow=False) if b.key == key)
    outcomes = {}
    for discharge in ("lazy", "compiled"):
        checker = bench.make_checker(CheckerConfig(discharge=discharge))
        stats = bench.verify_all(checker)
        outcomes[discharge] = [
            (result.method, result.verified, result.error)
            for result in stats.method_results
        ]
    assert outcomes["lazy"] == outcomes["compiled"]


@pytest.mark.parametrize(
    "key", [bench.key for bench in all_benchmarks(include_slow=False)]
)
def test_suite_negative_variants_agree(key):
    """Known-bad variants are rejected identically, traces included."""
    from repro.typecheck.checker import CheckerConfig

    bench = next(b for b in all_benchmarks(include_slow=False) if b.key == key)
    if not bench.negative_variants:
        pytest.skip(f"{key} has no negative variants")
    for variant in bench.negative_variants:
        outcomes = {}
        for discharge in ("lazy", "compiled"):
            checker = bench.make_checker(CheckerConfig(discharge=discharge))
            result = bench.verify_negative_variant(variant, checker)
            outcomes[discharge] = (result.verified, result.error)
        assert not outcomes["lazy"][0]
        assert outcomes["lazy"] == outcomes["compiled"]
