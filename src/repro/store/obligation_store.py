"""The persistent obligation store: verdicts + witnesses + discharge stats.

An :class:`ObligationStore` is a directory holding a JSON-lines log of
discharged obligations, content-addressed by
(:func:`~repro.store.fingerprint.environment_fingerprint`,
:func:`~repro.store.fingerprint.obligation_digest`):

``path/meta.json``
    ``{"schema": ...}`` — entries written under a different schema tag are
    discarded wholesale on open (never reinterpreted).
``path/entries.jsonl``
    One entry per line, append-only; the last line for a key wins.  Besides
    the verdict (included / counterexample trace / resource-limit error) each
    entry carries the per-obligation ``SolverStats``/``InclusionStats``
    counter dicts, so a warm run merges *exactly* the numbers a cold
    discharge would have produced — this is what makes warm tables
    byte-identical to cold ones — plus a dependency record (benchmark scope,
    method, spec digest, library digest) for targeted invalidation.
``path/shards/shard-K.jsonl``
    Transient per-process outputs of the sharded suite runner, merged back
    into ``entries.jsonl`` by :meth:`ObligationStore.absorb_shards`.

Invalidation is dependency-tracked: when a method is about to be verified,
:meth:`invalidate_stale` drops exactly the entries whose recorded spec or
library digest no longer matches — entries of other benchmarks (and of this
benchmark's unchanged methods) are untouched.  Content addressing already
guarantees a *changed* obligation can never hit a stale verdict; invalidation
keeps the store from accumulating unreachable entries and makes the
``--explain`` counts meaningful.

One caveat is inherited from the engine's cross-method memo: per-obligation
counters are pure functions of (inline-solver warm snapshot, obligation), and
the warm snapshot depends on which methods were emitted before the obligation
first needed discharging.  Re-running the *same* command against a store is
therefore byte-identical; mixing differently-shaped runs (``check --method``
vs ``evaluate``) can shift cache-hit counters between columns — never
verdicts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

#: Store layout version; entries under another tag are discarded on open.
SCHEMA_VERSION = "pymarple-store-v1"

_ENTRIES = "entries.jsonl"
_META = "meta.json"
_SHARD_DIR = "shards"
_RUNS = "runs.jsonl"
#: the run log is trimmed to this many most-recent records on commit
_MAX_RUN_RECORDS = 256


@dataclass
class StoreEntry:
    """One discharged obligation: verdict, witness trace and counter dicts."""

    env: str
    fp: str
    included: bool
    counterexample: Optional[list[str]] = None
    error: Optional[str] = None
    solver_stats: dict = field(default_factory=dict)
    inclusion_stats: dict = field(default_factory=dict)
    scope: str = ""
    method: str = ""
    spec: str = ""
    library: str = ""
    kind: str = ""
    provenance: str = ""
    #: the discharge cost record (``{"wall": seconds, ...}``) behind the
    #: cost-model scheduler.  Deliberately *outside* the content address and
    #: the deterministic tables: it is a measurement, not a semantic fact —
    #: advisory across environments (a dpll-warmed store still orders a cdcl
    #: run sensibly) and free to vary run to run.
    cost: dict = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str]:
        return (self.env, self.fp)

    @property
    def wall_cost(self) -> Optional[float]:
        """The recorded wall-clock discharge cost in seconds, if any."""
        wall = self.cost.get("wall")
        return float(wall) if isinstance(wall, (int, float)) else None

    def to_json(self) -> str:
        return json.dumps(
            {
                "env": self.env,
                "fp": self.fp,
                "inc": self.included,
                "cex": self.counterexample,
                "err": self.error,
                "sol": self.solver_stats,
                "fa": self.inclusion_stats,
                "scope": self.scope,
                "method": self.method,
                "spec": self.spec,
                "lib": self.library,
                "kind": self.kind,
                "prov": self.provenance,
                "cost": self.cost,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "StoreEntry":
        obj = json.loads(line)
        return cls(
            env=obj["env"],
            fp=obj["fp"],
            included=bool(obj["inc"]),
            counterexample=obj.get("cex"),
            error=obj.get("err"),
            solver_stats=obj.get("sol") or {},
            inclusion_stats=obj.get("fa") or {},
            scope=obj.get("scope", ""),
            method=obj.get("method", ""),
            spec=obj.get("spec", ""),
            library=obj.get("lib", ""),
            kind=obj.get("kind", ""),
            provenance=obj.get("prov", ""),
            cost=obj.get("cost") or {},
        )


@dataclass(frozen=True)
class StoreContext:
    """The dependency record attached to entries written during one method."""

    scope: str
    method: str
    spec_digest: str
    library_digest: str


@dataclass
class MethodStoreCounts:
    """Per-method session counters backing ``--explain``."""

    hits: int = 0
    misses: int = 0
    invalidated: int = 0


class ObligationStore:
    """A content-addressed, dependency-indexed verdict store on disk."""

    def __init__(self, path: os.PathLike | str, *, shard_output: Optional[int] = None) -> None:
        self.path = Path(path)
        #: when set, writes go to ``shards/shard-K.jsonl`` instead of the main
        #: log, and invalidation never rewrites the (shared) main log — the
        #: mode the sharded runner's forked children run in.
        self.shard_output = shard_output
        self._entries: dict[tuple[str, str], StoreEntry] = {}
        self._pending: list[StoreEntry] = []
        #: per-(scope, method) session counters, in first-check order
        self.session: dict[tuple[str, str], MethodStoreCounts] = {}
        #: obligation fp -> recorded wall cost (advisory, env-free): built
        #: from every loaded/recorded entry and deliberately *not* pruned by
        #: invalidation — a stale verdict's cost is still a fine schedule hint
        self._cost_index: dict[str, float] = {}
        #: (env, fp) keys referenced (hit or written) since the last
        #: :meth:`commit_run` — the session bookkeeping behind store GC
        self._touched: dict[tuple[str, str], None] = {}
        #: the persisted run log: one ``{"run": n, "touched": [...]}`` per run
        self._runs: list[dict] = []
        self._load()

    # -- loading -----------------------------------------------------------------
    def _load(self) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        meta_path = self.path / _META
        schema: Optional[str] = None
        if meta_path.exists():
            try:
                schema = json.loads(meta_path.read_text()).get("schema")
            except (OSError, ValueError):
                schema = None
        entries_path = self.path / _ENTRIES
        if schema != SCHEMA_VERSION:
            # Unknown or missing schema: never reinterpret old entries — and
            # that includes leftover shard files from an interrupted sharded
            # run, which absorb_shards would otherwise merge later
            if self.shard_output is None:
                if entries_path.exists():
                    entries_path.unlink()
                for shard_file in self.shard_files():
                    shard_file.unlink()
                runs_path = self.path / _RUNS
                if runs_path.exists():
                    runs_path.unlink()
                meta_path.write_text(json.dumps({"schema": SCHEMA_VERSION}) + "\n")
            return
        if entries_path.exists():
            with entries_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = StoreEntry.from_json(line)
                    except (ValueError, KeyError):
                        continue  # tolerate a torn/corrupt trailing line
                    self._entries[entry.key] = entry
                    self._note_cost(entry)
        runs_path = self.path / _RUNS
        if runs_path.exists():
            with runs_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if (
                        isinstance(record, dict)
                        and isinstance(record.get("touched"), list)
                        and isinstance(record.get("run"), int)
                    ):
                        self._runs.append(record)

    def _note_cost(self, entry: StoreEntry) -> None:
        wall = entry.wall_cost
        if wall is not None:
            self._cost_index[entry.fp] = wall

    # -- the read/write surface ----------------------------------------------------
    def lookup(self, env: str, fp: str) -> Optional[StoreEntry]:
        entry = self._entries.get((env, fp))
        if entry is not None:
            self._touched[entry.key] = None
        return entry

    def record(self, entry: StoreEntry) -> None:
        self._entries[entry.key] = entry
        self._pending.append(entry)
        self._touched[entry.key] = None
        self._note_cost(entry)

    def cost_hint(self, fp: str) -> Optional[float]:
        """The last recorded wall cost for an obligation fingerprint, if any.

        Deliberately environment-free: verdicts must never cross environments
        (a cdcl run cannot replay dpll counters), but a *measurement* of how
        long the obligation took to discharge is a fine scheduling hint under
        any backend/strategy — which is exactly when cold obligations have
        history (the same-environment case would have been a store hit).
        """
        return self._cost_index.get(fp)

    def flush(self) -> None:
        """Append pending entries to the log (or to this process's shard file)."""
        if not self._pending:
            return
        target = self._output_path()
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("a", encoding="utf-8") as handle:
            for entry in self._pending:
                handle.write(entry.to_json() + "\n")
        self._pending.clear()

    def _output_path(self) -> Path:
        if self.shard_output is None:
            return self.path / _ENTRIES
        return self.path / _SHARD_DIR / f"shard-{self.shard_output}.jsonl"

    def compact(self) -> None:
        """Rewrite the log with exactly the live entries (drops dead lines)."""
        if self.shard_output is not None:
            return
        entries_path = self.path / _ENTRIES
        tmp_path = entries_path.with_suffix(".jsonl.tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for entry in self._entries.values():
                handle.write(entry.to_json() + "\n")
        tmp_path.replace(entries_path)
        self._pending.clear()

    # -- dependency-tracked invalidation -------------------------------------------
    def invalidate_stale(
        self, scope: str, method: str, spec_digest: str, library_digest: str
    ) -> int:
        """Drop exactly the entries invalidated by a spec or library edit.

        An entry of ``scope`` dies when the benchmark's library digest changed
        (every method's obligations sat on its axioms and alphabets) or when
        it belongs to ``method`` and that method's spec digest changed.
        Entries of other scopes are never touched.
        """
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.scope == scope
            and (
                entry.library != library_digest
                or (entry.method == method and entry.spec != spec_digest)
            )
        ]
        for key in stale:
            del self._entries[key]
        if stale and self.shard_output is None:
            # compact() rewrites the log from the live entries (pending
            # included) and clears the pending buffer — no flush needed
            self.compact()
        return len(stale)

    # -- session bookkeeping (--explain) -------------------------------------------
    def note_method(
        self, scope: str, method: str, *, hits: int = 0, misses: int = 0, invalidated: int = 0
    ) -> None:
        counts = self.session.setdefault((scope, method), MethodStoreCounts())
        counts.hits += hits
        counts.misses += misses
        counts.invalidated += invalidated

    def summary(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": sum(c.hits for c in self.session.values()),
            "misses": sum(c.misses for c in self.session.values()),
            "invalidated": sum(c.invalidated for c in self.session.values()),
        }

    def explain(self) -> list[dict[str, object]]:
        """Per-method hit/miss/invalidated counts, in first-check order."""
        return [
            {
                "scope": scope,
                "method": method,
                "hits": counts.hits,
                "misses": counts.misses,
                "invalidated": counts.invalidated,
            }
            for (scope, method), counts in self.session.items()
        ]

    # -- run bookkeeping and garbage collection --------------------------------------
    def commit_run(self) -> int:
        """Close the current session as one *run* in the persistent run log.

        Appends the set of entry keys this session referenced (store hits and
        fresh writes alike) to ``runs.jsonl`` — the reference trail
        :meth:`gc` keeps entries alive by.  Returns the number of keys
        recorded; a session that touched nothing records no run.  Shard
        workers never commit runs (the parent absorbs their entries and
        commits on their behalf).
        """
        if self.shard_output is not None or not self._touched:
            self._touched.clear()
            return 0
        self.flush()
        touched = sorted(f"{env}:{fp}" for env, fp in self._touched)
        sequence = (self._runs[-1]["run"] + 1) if self._runs else 1
        self._runs.append({"run": sequence, "touched": touched})
        self._touched.clear()
        if len(self._runs) > _MAX_RUN_RECORDS:
            self._runs = self._runs[-_MAX_RUN_RECORDS:]
        runs_path = self.path / _RUNS
        with runs_path.open("w", encoding="utf-8") as handle:
            for record in self._runs:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(touched)

    def gc(self, keep_last: int) -> int:
        """Expire entries unreferenced by the last ``keep_last`` runs.

        Content addressing already guarantees stale entries can never be
        *hit*; GC is about space — spec edits, renamed methods and abandoned
        experiments leave verdicts nothing will ever look up again.  An entry
        survives iff one of the last ``keep_last`` committed runs referenced
        it (hit it or wrote it), so everything those runs warm-started from
        still warm-starts after the sweep.  Returns the number of entries
        dropped; older run records are dropped from the log too.
        """
        if keep_last < 1:
            raise ValueError("gc requires keep_last >= 1")
        if self.shard_output is not None:
            return 0
        if self._touched:
            # an uncommitted session counts as the most recent run
            self.commit_run()
        kept_runs = self._runs[-keep_last:]
        referenced: set[tuple[str, str]] = set()
        for record in kept_runs:
            for key in record["touched"]:
                env, _, fp = key.partition(":")
                referenced.add((env, fp))
        stale = [key for key in self._entries if key not in referenced]
        for key in stale:
            del self._entries[key]
        self._runs = kept_runs
        runs_path = self.path / _RUNS
        with runs_path.open("w", encoding="utf-8") as handle:
            for record in self._runs:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.compact()
        return len(stale)

    # -- shard merging ---------------------------------------------------------------
    def shard_files(self) -> list[Path]:
        shard_dir = self.path / _SHARD_DIR
        if not shard_dir.is_dir():
            return []

        def index_of(p: Path) -> int:
            try:
                return int(p.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                return 1 << 30

        return sorted(shard_dir.glob("shard-*.jsonl"), key=index_of)

    def absorb_shards(self) -> int:
        """Merge shard outputs into the main log, deterministically.

        Files are read in shard-index order; within a file, line order.  Shard
        assignment partitions fingerprints, so collisions only arise against
        pre-existing entries — which already carry the same content — making
        the merge order-insensitive in value, deterministic in bytes.
        """
        absorbed = 0
        for shard_file in self.shard_files():
            with shard_file.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = StoreEntry.from_json(line)
                    except (ValueError, KeyError):
                        continue
                    if entry.key not in self._entries:
                        self.record(entry)
                        absorbed += 1
            shard_file.unlink()
        self.flush()
        return absorbed

    # -- misc ------------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StoreEntry]:
        return iter(self._entries.values())

    def entries_for_scope(self, scope: str) -> list[StoreEntry]:
        return [entry for entry in self._entries.values() if entry.scope == scope]
