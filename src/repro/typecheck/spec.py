"""Method specifications: the HAT-enriched signatures of ADT operations.

A :class:`MethodSpec` is the flattened form of the types the paper ascribes
to ADT methods, e.g. (τ_add)::

    p:Path.t ⤳ path:{ν:Path.t|⊤} → bytes:{ν:Bytes.t|⊤} → [I_FS(p)] bool [I_FS(p)]

i.e. a list of ghost variables, a list of (dependent) value parameters, and a
result HAT.  Representation invariants are expressed by using the same
automaton as pre- and postcondition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from .. import smt
from ..smt.sorts import Sort
from ..sfa import symbolic
from ..sfa.symbolic import Sfa
from ..types.rtypes import (
    FunType,
    GhostArrow,
    HatType,
    RefinementType,
    Type,
    base,
)

#: A parameter is either a pure refinement type or (for thunk-passing ADTs
#: such as LazySet) a function type whose result is a HAT.
ParamType = Union[RefinementType, FunType]


@dataclass(frozen=True)
class MethodSpec:
    """The declared signature of one ADT method."""

    name: str
    ghosts: tuple[tuple[str, Sort], ...]
    params: tuple[tuple[str, ParamType], ...]
    precondition: Sfa
    result: Union[RefinementType, FunType]
    postcondition: Sfa

    # -- derived views ---------------------------------------------------------------
    def ghost_vars(self) -> dict[str, smt.Term]:
        return {name: smt.var(name, sort) for name, sort in self.ghosts}

    def param_var(self, name: str) -> smt.Term:
        for param_name, param_type in self.params:
            if param_name == name:
                if not isinstance(param_type, RefinementType):
                    raise TypeError(f"parameter {name} is function-typed")
                return smt.var(name, param_type.sort)
        raise KeyError(name)

    def as_type(self) -> Type:
        """The spec as a nested ``GhostArrow``/``FunType``/``HatType``."""
        result: Type = HatType(self.precondition, self.result, self.postcondition) \
            if isinstance(self.result, RefinementType) else self.result
        for param_name, param_type in reversed(self.params):
            result = FunType(param_name, param_type, result)
        for ghost_name, ghost_sort in reversed(self.ghosts):
            result = GhostArrow(ghost_name, ghost_sort, result)
        return result

    def rename_params(self, new_names: Sequence[str]) -> "MethodSpec":
        """Rename the value parameters (to match an implementation's names)."""
        if len(new_names) != len(self.params):
            raise ValueError(
                f"{self.name}: specification has {len(self.params)} parameters, "
                f"implementation has {len(new_names)}"
            )
        mapping: dict[smt.Term, smt.Term] = {}
        params: list[tuple[str, ParamType]] = []
        for (old_name, param_type), new_name in zip(self.params, new_names):
            if isinstance(param_type, RefinementType) and old_name != new_name:
                mapping[smt.var(old_name, param_type.sort)] = smt.var(new_name, param_type.sort)
            params.append((new_name, param_type))
        if not mapping:
            return MethodSpec(
                self.name, self.ghosts, tuple(params), self.precondition, self.result, self.postcondition
            )
        result = (
            self.result.substitute(mapping)
            if isinstance(self.result, RefinementType)
            else self.result
        )
        return MethodSpec(
            name=self.name,
            ghosts=self.ghosts,
            params=tuple(
                (n, t.substitute(mapping) if isinstance(t, RefinementType) else t)
                for n, t in params
            ),
            precondition=symbolic.substitute(self.precondition, mapping),
            result=result,
            postcondition=symbolic.substitute(self.postcondition, mapping),
        )


def invariant_method(
    name: str,
    ghosts: Sequence[tuple[str, Sort]],
    params: Sequence[tuple[str, ParamType]],
    invariant: Sfa,
    result: Union[RefinementType, FunType],
) -> MethodSpec:
    """The common shape: the representation invariant as both pre- and postcondition."""
    return MethodSpec(
        name=name,
        ghosts=tuple(ghosts),
        params=tuple(params),
        precondition=invariant,
        result=result,
        postcondition=invariant,
    )
