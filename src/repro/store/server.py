"""``repro store serve`` — a shared obligation-cache service over HTTP.

A :class:`StoreService` wraps any *local* backend (jsonl directory or sqlite
file) and executes the store-level operations a
:class:`~repro.store.remote.RemoteStoreBackend` client sends — batched
lookup, batched append, ``compact``, ``commit_run``, ``gc``,
``invalidate`` — each under the wrapped backend's existing lock/transaction,
so a CI fleet (or many watch sessions) on different machines hit one warm
cache with exactly the local store's concurrency guarantees.

Design notes:

* The service keeps the store state in memory (loaded once at startup,
  maintained through its own writes) so lookups cost no disk I/O; mutating
  operations go to the backend *first* — durably, fsynced/transactional —
  and only then update the cache, so a crash at any point loses nothing
  that was acknowledged.  Read-modify-rewrite operations re-adopt the state
  the backend re-read under its exclusive lock, which also self-heals the
  cache if a local process wrote to the files behind the server's back.
* Writes carry client idempotency keys; the service remembers recent keys
  (with their responses) and replays the response instead of re-applying the
  write, so a client retrying a request whose *response* was lost cannot
  double-apply.  Keys are remembered **per client** (the client id travels
  in the payload): one client flooding writes can only evict its *own* old
  keys, never another — slower — client's in-flight retry window.  The key
  cache is in-memory: after a server restart a replayed append merely
  re-UPSERTs identical content (entries are keyed), and a replayed
  ``commit_run`` appends a fresh run record — both harmless.
* The service also owns the :class:`~repro.store.queue.WorkQueue` behind
  distributed discharge (``enqueue``/``lease``/``complete``/``extend``/
  ``queue_status``).  The queue is in-memory only — durability lives in the
  store itself: a coordinator re-dispatch recomputes the remaining work from
  the store, so completed obligations are never redone after a crash.
* All operations serialise on one lock.  HTTP handling itself is threaded
  (:class:`ThreadingHTTPServer`), so slow clients never block the accept
  loop, only the store critical section is serial.  Responses advertise
  HTTP/1.1 keep-alive, so a pulling worker's thousands of small queue RPCs
  reuse one TCP connection instead of paying a connect each.

``REPRO_STORE_SERVE_CRASH`` is a fault-injection hook for the crash-recovery
suite: set to ``"<op>:before"`` or ``"<op>:after"`` it hard-kills the server
process (``os._exit``) immediately before or after that operation persists,
exercising the client's retry/idempotency path deterministically.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..obs.logs import get_logger
from .backends import SCHEMA_VERSION, LoadedState, StoreEntry, open_backend
from .obligation_store import append_run_record, stale_entry_keys, sweep_unreferenced
from .queue import QueueItem, WorkQueue

logger = get_logger("store")

SERVER_NAME = "pymarple-store-serve/1"

#: how many recent idempotency keys (and their responses) the service holds
#: *per client* — eviction is per-client, so one chatty client can never
#: evict another client's retry window into a double-apply
_MAX_IDEMPOTENCY_KEYS_PER_CLIENT = 1024
#: how many distinct clients' key caches the service holds (LRU beyond that)
_MAX_IDEMPOTENCY_CLIENTS = 64

#: fault-injection hook for the crash-recovery tests (see module docstring)
ENV_SERVE_CRASH = "REPRO_STORE_SERVE_CRASH"


class UnknownOperation(Exception):
    """The request path names no protocol operation."""


class StoreService:
    """Owns the wrapped backend, the in-memory state and the op lock."""

    def __init__(self, path, backend: Optional[str] = None) -> None:
        self.backend = open_backend(path, backend)
        if not getattr(self.backend, "supports_update", True):
            raise ValueError(
                f"cannot serve {str(path)!r}: it is itself a remote store "
                "URL; serve the local store the server should wrap"
            )
        self._lock = threading.Lock()
        state = self.backend.load(wipe_mismatch=True)
        self._entries = state.entries
        self._runs = state.runs
        self.skipped = state.skipped
        #: client id -> (idempotency key -> replayed response), both LRU
        self._seen: OrderedDict[str, OrderedDict[str, dict]] = OrderedDict()
        self._crash = os.environ.get(ENV_SERVE_CRASH, "")
        #: the work queue behind distributed discharge (in-memory only;
        #: durability is the store's job — see the module docstring)
        self.queue = WorkQueue()
        #: the queue's clock — monotonic so wall-clock steps can't expire or
        #: immortalise leases; overridable by the fault-injection tests
        self.queue_clock = time.monotonic
        #: per-op request counts and latency sums plus the lookup hit rate,
        #: served by the ``stats`` op (``repro store stats URL``)
        self._op_stats: dict[str, dict] = {}
        self._lookup_requested = 0
        self._lookup_found = 0
        self._started = time.time()

    # -- plumbing -----------------------------------------------------------------
    def _maybe_crash(self, op: str, when: str) -> None:
        if self._crash == f"{op}:{when}":  # pragma: no cover - exits the process
            logger.warning("fault injection: crashing %s %s", when, op)
            os._exit(3)

    def _adopt(self, state: LoadedState) -> None:
        self._entries = state.entries
        self._runs = state.runs

    def _client_keys(self, client: str) -> OrderedDict[str, dict]:
        bucket = self._seen.get(client)
        if bucket is None:
            bucket = self._seen[client] = OrderedDict()
            while len(self._seen) > _MAX_IDEMPOTENCY_CLIENTS:
                self._seen.popitem(last=False)
        else:
            self._seen.move_to_end(client)
        return bucket

    def _note_op(self, op: str, seconds: float, *, replayed: bool = False) -> None:
        record = self._op_stats.setdefault(
            op, {"count": 0, "seconds": 0.0, "replays": 0}
        )
        if replayed:
            record["replays"] += 1
        else:
            record["count"] += 1
            record["seconds"] += seconds

    def execute(self, op: str, payload: dict) -> dict:
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise UnknownOperation(f"unknown store operation {op!r}")
        with self._lock:
            key = payload.get("key")
            client = payload.get("client")
            seen = self._client_keys(client if isinstance(client, str) else "")
            if isinstance(key, str) and key in seen:
                seen.move_to_end(key)
                self._note_op(op, 0.0, replayed=True)
                logger.debug("replaying idempotent %s (key %s)", op, key)
                return seen[key]
            self._maybe_crash(op, "before")
            started = time.perf_counter()
            result = handler(payload)
            self._note_op(op, time.perf_counter() - started)
            self._maybe_crash(op, "after")
            if isinstance(key, str) and key:
                seen[key] = result
                while len(seen) > _MAX_IDEMPOTENCY_KEYS_PER_CLIENT:
                    seen.popitem(last=False)
            return result

    def close(self) -> None:
        self.backend.close()

    # -- protocol operations ------------------------------------------------------
    def op_handshake(self, _payload: dict) -> dict:
        return {
            "server": SERVER_NAME,
            "schema": SCHEMA_VERSION,
            "backend": self.backend.name,
            "path": str(self.backend.path),
            "entries": len(self._entries),
            "runs": len(self._runs),
            "skipped": self.skipped,
        }

    def op_lookup(self, payload: dict) -> dict:
        env = payload["env"]
        fps = payload["fps"]
        if not isinstance(env, str) or not isinstance(fps, list):
            raise ValueError("lookup needs an 'env' string and an 'fps' list")
        found = []
        for fp in fps:
            entry = self._entries.get((env, fp))
            if entry is not None:
                found.append(entry.to_record())
        self._lookup_requested += len(fps)
        self._lookup_found += len(found)
        return {"found": found, "entries": len(self._entries)}

    def op_cost_hints(self, _payload: dict) -> dict:
        costs: dict[str, float] = {}
        for entry in self._entries.values():
            wall = entry.wall_cost
            if wall is not None:
                costs[entry.fp] = wall
        return {"costs": costs, "entries": len(self._entries)}

    def op_append(self, payload: dict) -> dict:
        records = payload["entries"]
        if not isinstance(records, list):
            raise ValueError("append needs an 'entries' list")
        batch = [StoreEntry.from_record(record) for record in records]
        skipped_existing = 0
        if payload.get("if_absent"):
            # queue workers write with if_absent: a worker whose lease was
            # stolen (and re-discharged elsewhere) must not land a second
            # copy of the verdict in the append log
            fresh = [entry for entry in batch if entry.key not in self._entries]
            skipped_existing = len(batch) - len(fresh)
            batch = fresh
        if batch:
            self.backend.append_entries(batch)
        for entry in batch:
            self._entries[entry.key] = entry
        logger.debug("appended %d entries for a remote client", len(batch))
        return {
            "appended": len(batch),
            "skipped_existing": skipped_existing,
            "entries": len(self._entries),
        }

    def op_compact(self, _payload: dict) -> dict:
        state = self.backend.update(lambda entries, runs: (entries, runs), runs=False)
        self._entries = state.entries
        return {"entries": len(self._entries)}

    def op_invalidate(self, payload: dict) -> dict:
        scope = payload["scope"]
        method = payload["method"]
        spec_digest = payload["spec"]
        library_digest = payload["library"]
        dropped = 0

        def drop_stale(entries, runs):
            nonlocal dropped
            stale = stale_entry_keys(entries, scope, method, spec_digest, library_digest)
            dropped = len(stale)
            for stale_key in stale:
                del entries[stale_key]
            return entries, runs

        state = self.backend.update(drop_stale, runs=False)
        self._entries = state.entries
        return {"dropped": dropped, "entries": len(self._entries)}

    def op_commit_run(self, payload: dict) -> dict:
        touched = payload["touched"]
        if not isinstance(touched, list) or not all(
            isinstance(item, str) for item in touched
        ):
            raise ValueError("commit_run needs a 'touched' list of strings")
        if not touched:
            return {"run": 0, "entries": len(self._entries)}
        sequence = 0

        def append_run(entries, runs):
            nonlocal sequence
            runs, sequence = append_run_record(runs, touched)
            return entries, runs

        state = self.backend.update(append_run, entries=False)
        self._runs = state.runs
        return {"run": sequence, "entries": len(self._entries)}

    def op_gc(self, payload: dict) -> dict:
        keep_last = payload["keep_last"]
        if not isinstance(keep_last, int) or keep_last < 1:
            raise ValueError("gc requires keep_last >= 1")
        dropped = 0

        def sweep(entries, runs):
            nonlocal dropped
            entries, kept_runs, stale = sweep_unreferenced(entries, runs, keep_last)
            dropped = len(stale)
            return entries, kept_runs

        self._adopt(self.backend.update(sweep))
        return {"dropped": dropped, "entries": len(self._entries)}

    # -- the work queue (distributed discharge) -----------------------------------
    def _queue_item(self, record: dict) -> QueueItem:
        env, fp, bench = record.get("env"), record.get("fp"), record.get("bench")
        if not (isinstance(env, str) and isinstance(fp, str) and isinstance(bench, str)):
            raise ValueError("queue items need 'env', 'fp' and 'bench' strings")
        cost = record.get("cost")
        measured = bool(record.get("measured"))
        # the store's own cost index outranks whatever the coordinator sent:
        # a recorded wall time (under any environment) is the LPT signal
        hint = self._entries.get((env, fp))
        wall = hint.wall_cost if hint is not None else None
        if wall is None:
            wall = self._wall_cost_of(fp)
        if wall is not None:
            cost, measured = wall, True
        return QueueItem(
            env=env,
            fp=fp,
            bench=bench,
            cost=float(cost) if isinstance(cost, (int, float)) else 0.0,
            measured=measured,
        )

    def _wall_cost_of(self, fp: str) -> Optional[float]:
        # env-free, exactly like ObligationStore.cost_hint: a measurement
        # from another environment is still a fine scheduling hint
        for entry in self._entries.values():
            if entry.fp == fp and entry.wall_cost is not None:
                return entry.wall_cost
        return None

    def op_enqueue(self, payload: dict) -> dict:
        records = payload["items"]
        if not isinstance(records, list):
            raise ValueError("enqueue needs an 'items' list")
        dispatch = payload.get("dispatch")
        if dispatch is not None and not isinstance(dispatch, str):
            raise ValueError("'dispatch' must be a string tag")
        items = [self._queue_item(record) for record in records]
        added, requeued = self.queue.enqueue(items, dispatch=dispatch)
        logger.debug("enqueued %d items (%d requeued) for dispatch %s", added, requeued, dispatch)
        return {"enqueued": added, "requeued": requeued, "queued": len(self.queue)}

    def op_lease(self, payload: dict) -> dict:
        count = payload.get("count", 1)
        ttl = payload.get("ttl", 30.0)
        if not isinstance(count, int) or not isinstance(ttl, (int, float)):
            raise ValueError("lease needs an integer 'count' and a numeric 'ttl'")
        worker = payload.get("worker")
        lease, items, reclaimed = self.queue.lease(
            count, float(ttl), self.queue_clock(),
            worker=worker if isinstance(worker, str) else "",
        )
        return {
            "lease": lease.id if lease is not None else None,
            "items": [item.to_record() for item in items],
            "reclaimed": reclaimed,
            "queued": len(self.queue),
        }

    def op_complete(self, payload: dict) -> dict:
        lease_id = payload.get("lease")
        keys = payload.get("keys")
        if not isinstance(lease_id, str) or not isinstance(keys, list):
            raise ValueError("complete needs a 'lease' id and a 'keys' list")
        completed, stale = self.queue.complete(lease_id, [str(key) for key in keys])
        return {"completed": completed, "stale": stale, "queued": len(self.queue)}

    def op_extend(self, payload: dict) -> dict:
        lease_id = payload.get("lease")
        ttl = payload.get("ttl")
        if not isinstance(lease_id, str) or not isinstance(ttl, (int, float)):
            raise ValueError("extend needs a 'lease' id and a numeric 'ttl'")
        # the deadline is computed against the *server's* clock — a client
        # with a skewed clock sends only the relative ttl, so skew is inert
        ok = self.queue.extend(lease_id, float(ttl), self.queue_clock())
        return {"ok": ok}

    def op_queue_status(self, payload: dict) -> dict:
        dispatch = payload.get("dispatch")
        if dispatch is not None and not isinstance(dispatch, str):
            raise ValueError("'dispatch' must be a string tag")
        return self.queue.status(dispatch, now=self.queue_clock())

    # -- metrics ------------------------------------------------------------------
    def op_stats(self, _payload: dict) -> dict:
        ops = {
            op: {
                "count": record["count"],
                "seconds": round(record["seconds"], 6),
                "replays": record["replays"],
            }
            for op, record in sorted(self._op_stats.items())
        }
        return {
            "uptime_seconds": round(time.time() - self._started, 3),
            "entries": len(self._entries),
            "runs": len(self._runs),
            "ops": ops,
            "lookup": {
                "requested": self._lookup_requested,
                "found": self._lookup_found,
            },
            "queue": self.queue.status(),
            "idempotency_clients": len(self._seen),
        }


class _StoreRequestHandler(BaseHTTPRequestHandler):
    server_version = SERVER_NAME
    #: HTTP/1.1 so keep-alive works: clients reuse one connection per
    #: process instead of paying a TCP connect per RPC (every reply already
    #: carries an exact Content-Length)
    protocol_version = "HTTP/1.1"
    #: TCP_NODELAY: a reply goes out as two small writes (header block, then
    #: body); on a kept-alive connection Nagle would hold the second write
    #: until the client's delayed ACK (~40ms per RPC — dwarfing the op itself)
    disable_nagle_algorithm = True

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, op: str, payload: dict) -> None:
        try:
            result = self.server.service.execute(op, payload)
        except UnknownOperation as exc:
            self._reply(404, {"error": str(exc)})
        except (ValueError, KeyError, TypeError) as exc:
            # malformed requests and validation failures are the client's
            # fault and must not be retried
            detail = str(exc) or type(exc).__name__
            self._reply(400, {"error": detail})
        except Exception as exc:  # pragma: no cover - defensive 5xx surface
            logger.warning("store op %s failed: %s", op, exc)
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._reply(200, result)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        op = self.path.strip("/")
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError):
            self._reply(400, {"error": "request body is not JSON"})
            return
        if not isinstance(payload, dict):
            self._reply(400, {"error": "request body must be a JSON object"})
            return
        self._dispatch(op, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        # the one curl-able endpoint: identity without a POST body
        if self.path.strip("/") == "handshake":
            self._dispatch("handshake", {})
        else:
            self._reply(404, {"error": "POST JSON to /<operation>"})

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("http %s", format % args)


class StoreHTTPServer(ThreadingHTTPServer):
    """The serving loop: threaded HTTP in front of one :class:`StoreService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: StoreService) -> None:
        super().__init__(address, _StoreRequestHandler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        if host in ("0.0.0.0", "::", ""):
            host = "127.0.0.1"
        return f"http://{host}:{port}"
