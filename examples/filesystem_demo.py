"""The paper's motivating example (Sec. 2): a file system over a key-value store.

The demo replays Example 2.1: starting from a store that contains only the
root directory, the correct ``add`` refuses to create ``/a/b.txt`` because its
parent ``/a`` does not exist, while the buggy ``addbad`` happily records the
orphan path — after which a ``delete`` would get stuck.  The representation
invariant I_FS is evaluated on both traces, and the buggy variant is rejected
by the static checker.

Run with:  python examples/filesystem_demo.py            (dynamic part only)
           python examples/filesystem_demo.py --verify   (also run the static
                                                           rejection of addbad;
                                                           takes a few minutes)
"""

import sys

from repro import smt
from repro.smt.sorts import PATH
from repro.sfa import accepts
from repro.sfa.events import Trace
from repro.suite.filesystem import FILESYSTEM_ADD_BAD, filesystem_kvstore


def main(verify: bool = False) -> None:
    bench = filesystem_kvstore()
    interpreter = bench.interpreter()
    module = bench.module(interpreter)

    # α0: the store contains only the root directory.
    trace0 = interpreter.call(module["init"], [()], Trace()).trace
    print(f"after init:      {trace0}")

    # the correct add refuses to create a file whose parent is missing
    good = interpreter.call(module["add"], ["/a/b.txt", {"kind": "file", "children": ()}], trace0)
    print(f"add /a/b.txt  -> {good.value}   emitted {list(e.op for e in good.emitted)}")

    # ... while the buggy version records the orphan path
    bad_program = bench.parse_variant(FILESYSTEM_ADD_BAD)
    bad_module_env = dict(module)
    bad_value = interpreter.eval_value(bad_program["addbad"].as_value(), bad_module_env)
    bad = interpreter.call(bad_value, ["/a/b.txt", {"kind": "file", "children": ()}], trace0)
    print(f"addbad /a/b.txt -> {bad.value}  emitted {list(e.op for e in bad.emitted)}")

    # evaluate the representation invariant I_FS(p) on both traces
    p = smt.var("p", PATH)
    interp = bench.library.interpretation()
    for label, trace in (("add", good.trace), ("addbad", bad.trace)):
        verdicts = [
            accepts(bench.invariant, trace, {p: path}, interp)
            for path in ("/", "/a", "/a/b.txt")
        ]
        print(f"I_FS holds on the {label!r} trace for '/', '/a', '/a/b.txt': {verdicts}")

    # adding the directory first, then the file, succeeds and preserves I_FS
    step1 = interpreter.call(module["add"], ["/a", {"kind": "dir", "children": ()}], trace0)
    step2 = interpreter.call(module["add"], ["/a/b.txt", {"kind": "file", "children": ()}], step1.trace)
    print(f"\nadd /a then /a/b.txt -> {step1.value}, {step2.value}")
    print(f"final trace: {step2.trace}")
    ok = all(
        accepts(bench.invariant, step2.trace, {p: path}, interp)
        for path in ("/", "/a", "/a/b.txt")
    )
    print(f"I_FS holds for every stored path: {ok}")

    if verify:
        print("\nstatically checking the buggy addbad against τ_add (this takes a while)...")
        result = bench.verify_negative_variant("addbad")
        print(f"addbad verified = {result.verified} (expected False)")
        print(f"reason: {result.error}")


if __name__ == "__main__":
    main(verify="--verify" in sys.argv[1:])
