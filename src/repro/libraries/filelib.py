"""Pure path/byte helpers used by the FileSystem benchmark (Fig. 1).

These are the ``Path`` and ``File`` modules of the paper's motivating
example: pure functions over opaque paths and byte blobs (``Path.parent``,
``File.isDir``, ``File.addChild``, ...).  Their logical meaning is given by
uninterpreted functions, method predicates and a small set of FOL lemmas
(Sec. 6); their concrete meaning — used by the interpreter and the dynamic
invariant checks — operates on Python strings and dictionaries.
"""

from __future__ import annotations

from .. import smt
from ..smt.sorts import BOOL, BYTES, PATH
from ..types.context import PureOpContext, PureOpSpec, uninterpreted_pure_op
from .base import Library
from ..sfa.signatures import OperatorRegistry
from ..types.context import BuiltinContext

# -- logical symbols --------------------------------------------------------------------

parent_fn = smt.declare("parent", [PATH], PATH)
is_root = smt.declare("isRoot", [PATH], BOOL, method_predicate=True)
is_dir = smt.declare("isDir", [BYTES], BOOL, method_predicate=True)
is_file = smt.declare("isFile", [BYTES], BOOL, method_predicate=True)
is_del = smt.declare("isDel", [BYTES], BOOL, method_predicate=True)
add_child_fn = smt.declare("addChild", [BYTES, PATH], BYTES)
del_child_fn = smt.declare("delChild", [BYTES, PATH], BYTES)
set_deleted_fn = smt.declare("setDeleted", [BYTES], BYTES)
init_bytes_fn = smt.declare("initBytes", [], BYTES)

ROOT_PATH = smt.data_const("/", PATH)


def file_axioms() -> list[smt.Axiom]:
    """The FOL lemmas giving meaning to the byte-kind method predicates."""
    b = smt.var("ax_bytes", BYTES)
    p = smt.var("ax_path", PATH)
    axioms = [
        smt.axiom("dir-not-file", [b], smt.implies(smt.apply(is_dir, b), smt.not_(smt.apply(is_file, b)))),
        smt.axiom("dir-not-del", [b], smt.implies(smt.apply(is_dir, b), smt.not_(smt.apply(is_del, b)))),
        smt.axiom("file-not-del", [b], smt.implies(smt.apply(is_file, b), smt.not_(smt.apply(is_del, b)))),
        smt.axiom(
            "kind-exhaustive",
            [b],
            smt.or_(smt.apply(is_dir, b), smt.apply(is_file, b), smt.apply(is_del, b)),
        ),
        smt.axiom("addChild-is-dir", [b, p], smt.apply(is_dir, smt.apply(add_child_fn, b, p))),
        smt.axiom("delChild-is-dir", [b, p], smt.apply(is_dir, smt.apply(del_child_fn, b, p))),
        smt.axiom("setDeleted-is-del", [b], smt.apply(is_del, smt.apply(set_deleted_fn, b))),
        smt.axiom("init-is-dir", [], smt.apply(is_dir, smt.apply(init_bytes_fn))),
    ]
    return axioms


def file_pure_ops() -> PureOpContext:
    pure = PureOpContext()
    pure.declare("Path.parent", parent_fn)
    pure.declare("Path.isRoot", is_root)
    pure.declare("File.isDir", is_dir)
    pure.declare("File.isFile", is_file)
    pure.declare("File.isDel", is_del)
    pure.declare("File.addChild", add_child_fn)
    pure.declare("File.delChild", del_child_fn)
    pure.declare("File.setDeleted", set_deleted_fn)

    def init_qualifier(binder, args):
        return smt.eq(binder, smt.apply(init_bytes_fn))

    pure.add(PureOpSpec("File.init", (), BYTES, init_qualifier))
    return pure


# -- concrete meanings --------------------------------------------------------------------


def concrete_parent(path: str) -> str:
    if path == "/":
        return "/"
    stripped = path.rstrip("/")
    head = stripped.rsplit("/", 1)[0]
    return head or "/"


def concrete_is_root(path: str) -> bool:
    return path == "/"


def _bytes(kind: str, children=()) -> dict:
    return {"kind": kind, "children": tuple(children)}


def file_pure_impls() -> dict:
    return {
        "Path.parent": concrete_parent,
        "Path.isRoot": concrete_is_root,
        "parent": concrete_parent,
        "isRoot": concrete_is_root,
        # `File.init ()` is applied to a unit argument in the surface syntax
        "File.init": lambda *_args: _bytes("dir"),
        "initBytes": lambda *_args: _bytes("dir"),
        "File.isDir": lambda b: b["kind"] == "dir",
        "isDir": lambda b: b["kind"] == "dir",
        "File.isFile": lambda b: b["kind"] == "file",
        "isFile": lambda b: b["kind"] == "file",
        "File.isDel": lambda b: b["kind"] == "del",
        "isDel": lambda b: b["kind"] == "del",
        "File.addChild": lambda b, p: _bytes("dir", tuple(b["children"]) + (p,)),
        "addChild": lambda b, p: _bytes("dir", tuple(b["children"]) + (p,)),
        "File.delChild": lambda b, p: _bytes("dir", tuple(c for c in b["children"] if c != p)),
        "delChild": lambda b, p: _bytes("dir", tuple(c for c in b["children"] if c != p)),
        "File.setDeleted": lambda b: _bytes("del", b["children"]),
        "setDeleted": lambda b: _bytes("del", b["children"]),
    }


def make_file_helpers() -> Library:
    """A pure-only 'library' bundling the Path/File helpers (no effectful ops)."""
    return Library(
        name="FileHelpers",
        operators=OperatorRegistry(),
        delta=BuiltinContext(),
        pure_ops=file_pure_ops(),
        axioms=tuple(file_axioms()),
        constants={"/": ROOT_PATH},
        pure_impls=file_pure_impls(),
        predicate_impls={},
    )
