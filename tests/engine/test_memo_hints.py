"""Worker-built alphabet keys travel back to the parent as eager-build hints.

A forked worker's :class:`AlphabetMemo` entries die with it — only the *keys*
of what it built are picklable.  Workers report those keys in their result
dicts; the parent records them (``EngineStats.worker_memo_keys``) and, before
forking a later batch, pre-builds any hinted construction it is missing
(``memo_eager_builds``) so the pool inherits it copy-on-write instead of
re-running it in every child.  Hints are pure reuse: the memo's recorded
bills keep every deterministic counter byte-identical either way, which the
cross-worker determinism suite locks in.
"""

import pickle

from repro import smt
from repro.smt import sorts
from repro.sfa import symbolic as S
from repro.sfa.alphabet import AlphabetMemo
from repro.sfa.signatures import OperatorRegistry
from repro.engine.obligations import Obligation
from repro.engine.scheduler import DischargeParams, ObligationEngine, discharge_obligation
from repro.suite.set_kvstore import set_kvstore
from repro.typecheck.checker import CheckerConfig


def _toy_obligation() -> tuple[OperatorRegistry, Obligation]:
    registry = OperatorRegistry()
    registry.declare("put", [("x", sorts.ELEM)], sorts.UNIT)
    signature = next(iter(registry))
    formal = next(f for f in signature.formals if f.sort is sorts.ELEM)
    predicate = smt.declare("hint_p", [sorts.ELEM], smt.BOOL, method_predicate=True)
    lhs = S.event(signature, smt.apply(predicate, formal))
    rhs = S.event(signature, smt.TRUE)
    obligation = Obligation(
        kind="test",
        hypotheses=(),
        lhs=lhs,
        rhs=rhs,
        provenance="toy",
        failure_message="inclusion failed",
        index=0,
    )
    return registry, obligation


def test_worker_reported_keys_become_eager_builds():
    registry, obligation = _toy_obligation()
    engine = ObligationEngine(registry, discharge="batch")
    memo = engine.params.alphabet_memo
    key = engine._group_key(obligation)
    assert key not in memo

    # harvest a (simulated) worker result's memo_keys
    engine._note_worker_keys([[key]])
    assert engine.stats.worker_memo_keys == 1
    # the same key again is not re-counted
    engine._note_worker_keys([[key]])
    assert engine.stats.worker_memo_keys == 1

    # the hinted construction is built once in the parent, then held
    engine._prebuild_hinted([(key, obligation)])
    assert engine.stats.memo_eager_builds == 1
    assert key in memo
    engine._prebuild_hinted([(key, obligation)])
    assert engine.stats.memo_eager_builds == 1


def test_unhinted_keys_are_not_prebuilt():
    registry, obligation = _toy_obligation()
    engine = ObligationEngine(registry, discharge="batch")
    key = engine._group_key(obligation)
    engine._prebuild_hinted([(key, obligation)])
    assert engine.stats.memo_eager_builds == 0
    assert key not in engine.params.alphabet_memo


def test_discharge_obligation_reports_built_memo_keys():
    """A cold discharge reports the keys it built — picklable, so they can
    cross the pool boundary — and a replayed one reports none."""
    registry, obligation = _toy_obligation()
    params = DischargeParams(operators=registry, alphabet_memo=AlphabetMemo())
    first = discharge_obligation(obligation, params)
    assert first["included"]
    assert first["memo_keys"], "a cold discharge must report its built keys"
    assert pickle.loads(pickle.dumps(first["memo_keys"])) == first["memo_keys"]

    second = discharge_obligation(obligation, params)
    assert second["included"]
    assert second["memo_keys"] == []


def test_memo_keys_absent_without_a_shared_memo():
    registry, obligation = _toy_obligation()
    params = DischargeParams(operators=registry)
    result = discharge_obligation(obligation, params)
    assert result["included"]
    assert result["memo_keys"] == []


def test_batch_pool_matches_serial_lazy_byte_identical():
    """Grouped discharge under a 4-way pool harvests worker keys and still
    reproduces the serial lazy counter tables exactly."""
    bench = set_kvstore()
    lazy_checker = bench.make_checker(CheckerConfig(discharge="lazy", workers=1))
    lazy_stats = bench.verify_all(lazy_checker)
    batch_checker = bench.make_checker(CheckerConfig(discharge="batch", workers=4))
    batch_stats = bench.verify_all(batch_checker)

    assert [r.stats.counter_row() for r in batch_stats.method_results] == [
        r.stats.counter_row() for r in lazy_stats.method_results
    ]
    assert [(r.method, r.verified, r.error) for r in batch_stats.method_results] == [
        (r.method, r.verified, r.error) for r in lazy_stats.method_results
    ]
    engine = batch_checker.obligation_engine
    assert engine.stats.batch_groups > 0
    assert engine.stats.batch_grouped_obligations >= engine.stats.batch_groups
