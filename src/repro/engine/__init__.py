"""The obligation engine: the schedule/discharge stages of the pipeline.

``repro.typecheck`` emits proof obligations as a first-class IR
(:class:`Obligation` / :class:`ObligationSet`), and this package decides
them: dedupe by structural fingerprint, a cross-method memo, cheapest-first
ordering, and serial or process-pool discharge with statistics merged back
into the evaluation tables.  See :mod:`repro.engine.scheduler` for the
determinism contract.
"""

from .obligations import KINDS, DischargeOutcome, Obligation, ObligationSet
from .scheduler import DischargeParams, EngineStats, ObligationEngine, discharge_obligation

__all__ = [
    "KINDS",
    "DischargeOutcome",
    "Obligation",
    "ObligationSet",
    "DischargeParams",
    "EngineStats",
    "ObligationEngine",
    "discharge_obligation",
]
