"""Cache-behaviour tests for the inclusion pipeline's three cache layers.

1. the :class:`InclusionChecker` result cache (``_cache``),
2. the solver's content-addressed query / enumeration caches
   (``SolverStats.cache_hits`` / ``cache_misses``),
3. the DFA-compilation memo (``InclusionStats.dfa_cache_hits``),

plus round-tripping of the new counters through ``merge`` / ``snapshot``.
"""

from repro import smt
from repro.smt.solver import SolverStats
from repro.sfa import symbolic as S
from repro.sfa.inclusion import InclusionChecker, InclusionStats


def _obligation(set_ops):
    from repro.smt import sorts

    insert = set_ops["insert"]
    el = smt.var("cache_el", sorts.ELEM)
    x = smt.var("cache_x", sorts.ELEM)
    insert_el = S.event_pinned(insert, {"x": el})
    invariant = S.globally(S.implies(insert_el, S.next_(S.not_(S.eventually(insert_el)))))
    fresh = S.and_(invariant, S.not_(S.eventually(S.event_pinned(insert, {"x": x}))))
    effect = S.and_(S.event_pinned(insert, {"x": x}), S.last())
    lhs = S.concat(fresh, effect)
    return lhs, invariant


def test_repeated_check_detailed_hits_result_cache(set_ops):
    lhs, invariant = _obligation(set_ops)
    checker = InclusionChecker(smt.Solver(), set_ops)

    first = checker.check_detailed([], lhs, invariant)
    assert checker.cache_hits == 0
    queries_after_first = checker.solver.stats.queries

    second = checker.check_detailed([], lhs, invariant)
    assert checker.cache_hits == 1
    assert second is first  # the cached result object itself
    # a result-cache hit does no solver work at all
    assert checker.solver.stats.queries == queries_after_first


def test_smt_query_cache_reports_hits():
    solver = smt.Solver()
    x = smt.var("qc_x", smt.INT)
    y = smt.var("qc_y", smt.INT)
    phi = smt.lt(x, y)

    assert solver.is_satisfiable(phi)
    assert solver.stats.cache_misses == 1
    assert solver.stats.cache_hits == 0
    queries = solver.stats.queries

    assert solver.is_satisfiable(phi)
    assert solver.stats.cache_hits == 1
    assert solver.stats.queries == queries  # cached: no new solver work

    # the enumeration cache shares the same counters
    a = smt.var("qc_a", smt.BOOL)
    models = solver.enumerate_models([a], base=phi)
    assert [value for _, value in models[0]] == [True]
    misses = solver.stats.cache_misses
    again = solver.enumerate_models([a], base=phi)
    assert again == models
    assert solver.stats.cache_misses == misses
    assert solver.stats.cache_hits >= 2


def test_enumeration_cache_speeds_repeated_alphabet_builds(set_ops):
    lhs, invariant = _obligation(set_ops)
    checker = InclusionChecker(smt.Solver(), set_ops)
    checker.check_detailed([], lhs, invariant)
    # the same automata pair under a different (empty) hypothesis set builds
    # the same alphabets: enumeration answers must come from the cache
    hits_before = checker.solver.stats.cache_hits
    checker.check_detailed([smt.TRUE], lhs, invariant)
    assert checker.solver.stats.cache_hits > hits_before


def test_dfa_memo_hits_across_equivalence_directions(set_ops):
    # the DFA memo only participates in the compiled discharge path; the
    # default lazy walk never materialises DFAs
    lhs, invariant = _obligation(set_ops)
    checker = InclusionChecker(smt.Solver(), set_ops, discharge="compiled")
    assert checker.check([], lhs, invariant)
    assert checker.stats.dfa_cache_hits == 0
    assert checker.stats.dfa_cache_misses > 0

    # the reverse direction rebuilds identical alphabets, so both automata
    # compile straight out of the memo
    checker.check([], invariant, lhs)
    assert checker.stats.dfa_cache_hits >= 2


def test_solver_stats_roundtrip_new_counters():
    stats = SolverStats(
        queries=3,
        sat_results=2,
        unsat_results=1,
        theory_conflicts=4,
        cache_hits=5,
        cache_misses=6,
        models_enumerated=7,
        time_seconds=0.5,
    )
    snap = stats.snapshot()
    assert snap == stats

    merged = SolverStats()
    merged.merge(stats)
    merged.merge(snap)
    assert merged.cache_hits == 10
    assert merged.cache_misses == 12
    assert merged.models_enumerated == 14
    assert merged.queries == 6


def test_inclusion_stats_roundtrip_new_counters():
    stats = InclusionStats(
        fa_inclusion_checks=1,
        automata_built=2,
        total_transitions=30,
        context_cases=4,
        minterm_candidates=16,
        satisfiable_minterms=9,
        dfa_cache_hits=5,
        dfa_cache_misses=6,
        fa_time_seconds=0.25,
    )
    snap = stats.snapshot()
    assert snap == stats

    merged = InclusionStats()
    merged.merge(stats)
    merged.merge(snap)
    assert merged.dfa_cache_hits == 10
    assert merged.dfa_cache_misses == 12
    assert merged.satisfiable_minterms == 18
