"""Common infrastructure for backing stateful libraries.

A :class:`Library` bundles everything a benchmark needs to talk about one
stateful API:

* the operator signatures (for the automata layer),
* the HAT signatures Δ of the effectful operators (Example 4.2),
* the pure helper functions / method predicates and their FOL axioms,
* named constants of the uninterpreted sorts,
* a trace-based effect model (the ``α ⊨ op v̄ ⇓ v`` rules of Example 3.1) and
  concrete interpretations of the method predicates, used by the interpreter
  and the dynamic invariant checks.

Libraries can be combined with :func:`merge_libraries` when an ADT is built
on several stateful APIs at once (e.g. MinSet = Set + MemCell).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .. import smt
from ..lang.interp import EffectModel, StuckError
from ..sfa.events import Trace
from ..sfa.signatures import EventSignature, OperatorRegistry
from ..types.context import BuiltinContext, PureOpContext
from ..types.rtypes import Type


@dataclass
class Library:
    """A stateful backing library, both specification- and model-side."""

    name: str
    operators: OperatorRegistry
    delta: BuiltinContext
    pure_ops: PureOpContext
    axioms: tuple[smt.Axiom, ...] = ()
    constants: dict[str, smt.Term] = field(default_factory=dict)
    #: op name -> callable(trace, args) -> result
    model_rules: dict[str, Callable[[Trace, Sequence[object]], object]] = field(default_factory=dict)
    #: pure function / method predicate name -> concrete implementation
    pure_impls: dict[str, Callable[..., object]] = field(default_factory=dict)
    #: method predicate name -> concrete implementation (for trace acceptance)
    predicate_impls: dict[str, Callable[..., object]] = field(default_factory=dict)

    # -- effect model -------------------------------------------------------------
    def model(self) -> EffectModel:
        return _RuleBasedModel(self.name, dict(self.model_rules))

    def interpretation(self) -> dict[str, Callable[..., object]]:
        """Concrete meanings of pure functions and predicates (for `sfa.accepts`)."""
        out = dict(self.pure_impls)
        out.update(self.predicate_impls)
        return out

    def effectful_op_names(self) -> list[str]:
        return self.operators.names()


class _RuleBasedModel:
    """An :class:`EffectModel` assembled from per-operator rules."""

    def __init__(self, name: str, rules: Mapping[str, Callable[[Trace, Sequence[object]], object]]):
        self._name = name
        self._rules = dict(rules)

    def apply(self, op: str, trace: Trace, args: Sequence[object]) -> object:
        rule = self._rules.get(op)
        if rule is None:
            raise StuckError(f"library {self._name} has no semantics for operator {op!r}")
        return rule(trace, args)


def merge_libraries(name: str, *libraries: Library) -> Library:
    """Combine several libraries into one (disjoint operator names required)."""
    operators = OperatorRegistry()
    delta = BuiltinContext()
    pure_ops = PureOpContext()
    axioms: list[smt.Axiom] = []
    constants: dict[str, smt.Term] = {}
    model_rules: dict[str, Callable[[Trace, Sequence[object]], object]] = {}
    pure_impls: dict[str, Callable[..., object]] = {}
    predicate_impls: dict[str, Callable[..., object]] = {}

    for library in libraries:
        for signature in library.operators:
            operators.add(signature)
        for op in library.delta.operators():
            delta.add(op, library.delta[op])
        for pure_name in library.pure_ops.names():
            pure_ops.add(library.pure_ops[pure_name])
        axioms.extend(library.axioms)
        constants.update(library.constants)
        model_rules.update(library.model_rules)
        pure_impls.update(library.pure_impls)
        predicate_impls.update(library.predicate_impls)

    return Library(
        name=name,
        operators=operators,
        delta=delta,
        pure_ops=pure_ops,
        axioms=tuple(axioms),
        constants=constants,
        model_rules=model_rules,
        pure_impls=pure_impls,
        predicate_impls=predicate_impls,
    )
