"""repro.store — persistent incremental verification.

The subsystem behind ``pymarple --incremental``:

* :mod:`repro.store.fingerprint` — process-independent content addresses for
  terms, automata, obligations, specs and libraries;
* :mod:`repro.store.obligation_store` — the on-disk JSON-lines store mapping
  (environment fingerprint, obligation fingerprint) to verdicts, witness
  traces and per-obligation discharge counters, with dependency-tracked
  invalidation;
* :mod:`repro.store.shard` — the sharded suite runner (imported lazily: it
  sits above the evaluation layer, which itself depends on this package).
"""

from .fingerprint import (
    environment_fingerprint,
    library_digest,
    obligation_digest,
    sfa_digest,
    shard_of,
    spec_digest,
    term_digest,
)
from .obligation_store import (
    SCHEMA_VERSION,
    MethodStoreCounts,
    ObligationStore,
    StoreContext,
    StoreEntry,
)

__all__ = [
    "SCHEMA_VERSION",
    "MethodStoreCounts",
    "ObligationStore",
    "StoreContext",
    "StoreEntry",
    "environment_fingerprint",
    "library_digest",
    "obligation_digest",
    "sfa_digest",
    "shard_of",
    "spec_digest",
    "term_digest",
]
