"""Unit tests for the hash-consed term algebra."""

import pytest

from repro import smt
from repro.smt import sorts, terms


def test_interning_gives_pointer_equality():
    x1 = smt.var("x", smt.INT)
    x2 = smt.var("x", smt.INT)
    assert x1 is x2
    y = smt.var("y", smt.INT)
    assert smt.add(x1, y) is smt.add(x2, y)


def test_var_same_name_different_sort_are_distinct():
    assert smt.var("x", smt.INT) is not smt.var("x", smt.BOOL)


def test_and_flattening_and_absorption():
    p = smt.var("p", smt.BOOL)
    q = smt.var("q", smt.BOOL)
    assert smt.and_() is smt.TRUE
    assert smt.and_(p) is p
    assert smt.and_(p, smt.TRUE) is p
    assert smt.and_(p, smt.FALSE) is smt.FALSE
    assert smt.and_(smt.and_(p, q), p) is smt.and_(p, q)


def test_or_flattening_and_absorption():
    p = smt.var("p", smt.BOOL)
    q = smt.var("q", smt.BOOL)
    assert smt.or_() is smt.FALSE
    assert smt.or_(p, smt.TRUE) is smt.TRUE
    assert smt.or_(p, smt.FALSE) is p
    assert smt.or_(p, q, p) is smt.or_(q, p)


def test_double_negation():
    p = smt.var("p", smt.BOOL)
    assert smt.not_(smt.not_(p)) is p
    assert smt.not_(smt.TRUE) is smt.FALSE


def test_eq_constant_folding():
    assert smt.eq(smt.int_const(3), smt.int_const(3)) is smt.TRUE
    assert smt.eq(smt.int_const(3), smt.int_const(4)) is smt.FALSE
    a = smt.data_const("a", sorts.ELEM)
    b = smt.data_const("b", sorts.ELEM)
    assert smt.eq(a, a) is smt.TRUE
    assert smt.eq(a, b) is smt.FALSE


def test_eq_is_oriented_canonically():
    x = smt.var("x", smt.INT)
    y = smt.var("y", smt.INT)
    assert smt.eq(x, y) is smt.eq(y, x)


def test_eq_on_formulas_becomes_iff():
    p = smt.var("p", smt.BOOL)
    q = smt.var("q", smt.BOOL)
    assert smt.eq(p, q).kind == terms.IFF


def test_eq_sort_mismatch_rejected():
    with pytest.raises(ValueError):
        smt.eq(smt.var("x", smt.INT), smt.var("p", smt.BOOL))


def test_arith_constant_folding():
    assert smt.add(smt.int_const(2), smt.int_const(3)).value == 5
    assert smt.sub(smt.int_const(2), smt.int_const(3)).value == -1
    assert smt.lt(smt.int_const(1), smt.int_const(2)) is smt.TRUE
    assert smt.le(smt.int_const(3), smt.int_const(2)) is smt.FALSE
    assert smt.mul(0, smt.var("x", smt.INT)).value == 0
    assert smt.mul(1, smt.var("x", smt.INT)) is smt.var("x", smt.INT)


def test_apply_checks_arity_and_sorts():
    parent = smt.declare("parent_t", [sorts.PATH], sorts.PATH)
    p = smt.var("p", sorts.PATH)
    assert smt.apply(parent, p).sort is sorts.PATH
    with pytest.raises(ValueError):
        smt.apply(parent, p, p)
    with pytest.raises(ValueError):
        smt.apply(parent, smt.var("n", smt.INT))


def test_declare_conflicting_signature_rejected():
    smt.declare("only_once", [smt.INT], smt.BOOL)
    with pytest.raises(ValueError):
        smt.declare("only_once", [smt.INT, smt.INT], smt.BOOL)


def test_substitute_replaces_variables():
    isdir = smt.declare("isDirT", [sorts.BYTES], smt.BOOL, method_predicate=True)
    v = smt.var("v", sorts.BYTES)
    w = smt.var("w", sorts.BYTES)
    phi = smt.and_(smt.apply(isdir, v), smt.not_(smt.eq(v, w)))
    replaced = smt.substitute(phi, {v: w})
    assert replaced is smt.and_(smt.apply(isdir, w), smt.not_(smt.eq(w, w)))
    assert replaced is smt.FALSE  # eq(w, w) folds to TRUE, negation to FALSE


def test_free_vars_and_forall():
    x = smt.var("x", smt.INT)
    y = smt.var("y", smt.INT)
    body = smt.lt(x, y)
    assert body.free_vars() == {x, y}
    quantified = smt.forall([x], body)
    assert quantified.free_vars() == {y}


def test_atoms_collects_comparison_atoms():
    x = smt.var("x", smt.INT)
    y = smt.var("y", smt.INT)
    p = smt.var("p", smt.BOOL)
    phi = smt.or_(smt.and_(smt.lt(x, y), p), smt.not_(smt.eq(x, y)))
    collected = smt.atoms(phi)
    assert smt.lt(x, y) in collected
    assert smt.eq(x, y) in collected
    assert p in collected
    assert len(collected) == 3


def test_evaluate_partial_assignment():
    p = smt.var("p", smt.BOOL)
    q = smt.var("q", smt.BOOL)
    phi = smt.or_(p, q)
    assert smt.evaluate(phi, {p: True}) is True
    assert smt.evaluate(phi, {p: False}) is None
    assert smt.evaluate(phi, {p: False, q: False}) is False
    assert smt.evaluate(smt.implies(p, q), {p: False}) is True


def test_pretty_round_trips_syntax_shapes():
    x = smt.var("x", smt.INT)
    text = repr(smt.and_(smt.lt(x, smt.int_const(3)), smt.not_(smt.eq(x, smt.int_const(0)))))
    assert "x" in text and "3" in text and "&&" in text
