"""Backend selection, lossless migration, and per-backend durability corners."""

import json
import sqlite3

import pytest

from repro.store import (
    JsonlStoreBackend,
    SqliteStoreBackend,
    migrate_store,
    resolve_store_backend,
)
from repro.store.obligation_store import ObligationStore, StoreEntry


def _entry(fp, *, included=True):
    return StoreEntry(
        env="env1",
        fp=fp,
        included=included,
        counterexample=None if included else ["put(a)", "put(a)"],
        solver_stats={"queries": 3, "cache_hits": 1},
        inclusion_stats={"fa_inclusion_checks": 1},
        scope="Set/KVStore",
        method="insert",
        spec="s1",
        library="l1",
        kind="postcondition",
        provenance="insert: postcondition",
        cost={"wall": 0.25},
    )


# -- selection ---------------------------------------------------------------------


def test_path_syntax_selects_the_backend(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
    assert resolve_store_backend(tmp_path / "fresh")[0] == "jsonl"
    for suffix in (".db", ".sqlite", ".sqlite3"):
        assert resolve_store_backend(tmp_path / f"store{suffix}")[0] == "sqlite"
    name, path = resolve_store_backend(f"sqlite:{tmp_path / 'plain'}")
    assert name == "sqlite" and path == tmp_path / "plain"


def test_existing_paths_beat_the_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
    existing_dir = tmp_path / "dir"
    existing_dir.mkdir()
    assert resolve_store_backend(existing_dir)[0] == "jsonl"
    existing_file = tmp_path / "plain-file"
    existing_file.touch()
    assert resolve_store_backend(existing_file)[0] == "sqlite"
    # only a fresh, unsuffixed path defers to the environment
    assert resolve_store_backend(tmp_path / "fresh")[0] == "sqlite"
    monkeypatch.setenv("REPRO_STORE_BACKEND", "jsonl")
    assert resolve_store_backend(tmp_path / "fresh")[0] == "jsonl"
    monkeypatch.delenv("REPRO_STORE_BACKEND")
    assert resolve_store_backend(tmp_path / "fresh")[0] == "jsonl"


def test_explicit_backend_argument_wins(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
    assert resolve_store_backend(tmp_path / "fresh", "jsonl")[0] == "jsonl"
    monkeypatch.delenv("REPRO_STORE_BACKEND")
    assert resolve_store_backend(tmp_path / "fresh", "sqlite")[0] == "sqlite"
    assert resolve_store_backend(tmp_path / "fresh", "auto")[0] == "jsonl"


def test_unknown_backend_names_are_rejected(tmp_path, monkeypatch):
    with pytest.raises(ValueError, match="unknown store backend"):
        resolve_store_backend(tmp_path / "fresh", "parquet")
    monkeypatch.setenv("REPRO_STORE_BACKEND", "parquet")
    with pytest.raises(ValueError, match="REPRO_STORE_BACKEND"):
        resolve_store_backend(tmp_path / "fresh")


def test_backends_reject_a_mismatched_path_shape(tmp_path):
    existing_dir = tmp_path / "dir"
    existing_dir.mkdir()
    with pytest.raises(ValueError, match="directory"):
        SqliteStoreBackend(existing_dir)
    existing_file = tmp_path / "file"
    existing_file.touch()
    with pytest.raises(ValueError, match="file"):
        JsonlStoreBackend(existing_file)


# -- migration ---------------------------------------------------------------------


def _populate(path, backend):
    store = ObligationStore(path, backend=backend)
    store.record(_entry("fp1"))
    store.record(_entry("fp2", included=False))
    store.flush()
    store.commit_run()
    return store


def test_migration_roundtrip_is_lossless(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
    jsonl_path = tmp_path / "store"
    _populate(jsonl_path, "jsonl")

    db_path = tmp_path / "store.db"
    copied = migrate_store(jsonl_path, db_path)
    assert copied == {"entries": 2, "runs": 1}
    via_sqlite = ObligationStore(db_path)
    assert via_sqlite.backend_name == "sqlite"

    back_path = tmp_path / "roundtripped"
    assert migrate_store(db_path, back_path, destination_backend="jsonl") == copied

    original = ObligationStore(jsonl_path)
    restored = ObligationStore(back_path, backend="jsonl")
    assert {e.key: e.to_json() for e in restored} == {
        e.key: e.to_json() for e in original
    }, "fingerprints, verdicts, witnesses, counters and costs all travel"
    assert restored._runs == original._runs, "the run log travels verbatim"
    assert restored.cost_hint("fp1") == 0.25


def test_migration_overwrites_the_destination(tmp_path):
    _populate(tmp_path / "src", "jsonl")
    stale = ObligationStore(tmp_path / "dst.db")
    stale.record(_entry("leftover"))
    stale.flush()
    stale.backend.close()

    migrate_store(tmp_path / "src", tmp_path / "dst.db")
    assert {e.fp for e in ObligationStore(tmp_path / "dst.db")} == {"fp1", "fp2"}


def test_migration_rejects_identical_paths(tmp_path):
    _populate(tmp_path / "store", "jsonl")
    with pytest.raises(ValueError, match="distinct"):
        migrate_store(tmp_path / "store", tmp_path / "store", destination_backend="jsonl")


# -- durability corners ------------------------------------------------------------


def test_sqlite_store_runs_in_wal_mode(tmp_path):
    store = ObligationStore(tmp_path / "store.db")
    store.record(_entry("fp1"))
    store.flush()
    store.backend.close()
    conn = sqlite3.connect(tmp_path / "store.db")
    try:
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        tables = {
            row[0]
            for row in conn.execute("SELECT name FROM sqlite_master WHERE type='table'")
        }
        assert {"meta", "entries", "deps", "costs", "runs"} <= tables
    finally:
        conn.close()


def test_leftover_tmp_file_from_a_crash_is_harmless(tmp_path):
    store = ObligationStore(tmp_path / "store", backend="jsonl")
    store.record(_entry("fp1"))
    store.flush()
    # a writer killed between writing the tmp file and os.replace leaves this
    (tmp_path / "store" / "entries.jsonl.tmp").write_bytes(b'{"half": ')

    reloaded = ObligationStore(tmp_path / "store", backend="jsonl")
    assert {e.fp for e in reloaded} == {"fp1"}
    assert reloaded.summary()["skipped"] == 0
    reloaded.compact()  # the next rewrite simply replaces the leftover
    assert json.loads(
        (tmp_path / "store" / "entries.jsonl").read_text().splitlines()[0]
    )["fp"] == "fp1"


def test_store_summary_surfaces_corrupt_sqlite_rows(tmp_path):
    store = ObligationStore(tmp_path / "store.db")
    store.record(_entry("fp1"))
    store.flush()
    store.backend.close()
    conn = sqlite3.connect(tmp_path / "store.db")
    with conn:
        conn.execute(
            "INSERT INTO entries(env, fp, included, solver_stats, inclusion_stats)"
            " VALUES('env1', 'torn', 1, 'not-json', '{}')"
        )
    conn.close()

    reloaded = ObligationStore(tmp_path / "store.db")
    assert {e.fp for e in reloaded} == {"fp1"}
    assert reloaded.summary()["skipped"] == 1


# -- failure paths (regression coverage for the PR-9 satellite fixes) --------------


def test_txn_rollback_failure_does_not_mask_the_original_error(tmp_path):
    """A failing ROLLBACK must re-raise the exception that aborted the txn.

    Pre-fix, ``_txn``'s bare ``conn.execute("ROLLBACK")`` in the except
    branch raised its own sqlite error (here: operating on a closed
    connection) and *that* propagated, burying the actual failure.
    """
    backend = SqliteStoreBackend(tmp_path / "store.db")
    backend.load(wipe_mismatch=True)
    with pytest.raises(RuntimeError, match="the real failure"):
        with backend._txn() as conn:
            conn.close()  # makes the rollback itself blow up
            raise RuntimeError("the real failure")
    backend._conn = None  # the connection object is dead; forget it


def test_failed_migration_closes_both_backends(tmp_path, monkeypatch):
    """A migration that dies mid-copy must not leak either backend.

    Pre-fix, ``migrate_store`` had no ``finally``: an exception out of
    load/update left the source sqlite connection (and the half-initialised
    destination) open for the life of the process.
    """
    _populate(tmp_path / "src.db", "sqlite")
    closes = []
    sqlite_close = SqliteStoreBackend.close
    jsonl_close = JsonlStoreBackend.close
    monkeypatch.setattr(
        SqliteStoreBackend, "close", lambda self: (closes.append("sqlite"), sqlite_close(self))[1]
    )
    monkeypatch.setattr(
        JsonlStoreBackend, "close", lambda self: (closes.append("jsonl"), jsonl_close(self))[1]
    )
    monkeypatch.setattr(
        JsonlStoreBackend,
        "update",
        lambda self, fn, *, entries=True, runs=True: (_ for _ in ()).throw(
            RuntimeError("disk full")
        ),
    )
    with pytest.raises(RuntimeError, match="disk full"):
        migrate_store(tmp_path / "src.db", tmp_path / "dst", destination_backend="jsonl")
    assert closes == ["sqlite", "jsonl"]


def test_migration_rejects_identical_paths_before_opening_anything(tmp_path, monkeypatch):
    """The same-path rejection happens before either backend is instantiated."""
    _populate(tmp_path / "store.db", "sqlite")

    def forbidden(self, path):
        raise AssertionError("no backend may be constructed for a rejected migration")

    monkeypatch.setattr(SqliteStoreBackend, "__init__", forbidden)
    alias = tmp_path / "sub" / ".." / "store.db"
    (tmp_path / "sub").mkdir()
    with pytest.raises(ValueError, match="distinct"):
        migrate_store(tmp_path / "store.db", alias)


def test_conflicting_path_and_backend_directives_are_an_error(tmp_path):
    """``sqlite:`` path + explicit other backend: refuse, don't silently pick.

    Pre-fix, the explicit argument silently won after the prefix was already
    stripped, so ``sqlite:foo`` + ``--store-backend jsonl`` opened a jsonl
    store at ``foo`` — the caller's two directives disagreed and neither was
    honoured as written.
    """
    with pytest.raises(ValueError, match="conflicting directives"):
        resolve_store_backend(f"sqlite:{tmp_path / 'store'}", "jsonl")
    # a still-unknown backend name keeps the existing diagnosis
    with pytest.raises(ValueError, match="unknown store backend"):
        resolve_store_backend(f"sqlite:{tmp_path / 'store'}", "parquet")
    # agreement is not a conflict
    assert resolve_store_backend(f"sqlite:{tmp_path / 'store'}", "sqlite")[0] == "sqlite"


def test_migration_rejects_remote_stores(tmp_path):
    _populate(tmp_path / "src", "jsonl")
    with pytest.raises(ValueError, match="local stores"):
        migrate_store(tmp_path / "src", "http://127.0.0.1:1/")
    with pytest.raises(ValueError, match="local stores"):
        migrate_store("https://cache.example/", tmp_path / "dst")
