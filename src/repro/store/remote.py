"""The remote store client: JSON-over-HTTP against ``repro store serve``.

A :class:`RemoteStoreBackend` is what :func:`~repro.store.backends.open_backend`
returns for an ``http://``/``https://`` store path, so
``--store http://host:port`` works everywhere a path does.  It is *not* a
drop-in ``StoreBackend``: the local protocol's ``update(fn)`` primitive takes
a closure, and a closure cannot cross the wire.  Instead the wire protocol
exposes the store-level operations the closures implement — batched lookup,
batched append, ``compact``, ``commit_run``, ``gc`` and ``invalidate`` — and
the server executes each one under the wrapped local backend's existing
lock/transaction.  :class:`~repro.store.obligation_store.ObligationStore`
detects ``supports_update = False`` and dispatches to these operations.

Reliability model:

* every call reuses **one persistent keep-alive connection per process**
  (dropped and re-established transparently: a stale socket — the server
  restarted, an idle timeout fired — costs one immediate reconnect, never a
  failed call; a fork is detected by pid and the inherited socket is
  abandoned, so parent and child never interleave bytes on one connection),
  with a socket timeout per request (``REPRO_STORE_RPC_TIMEOUT``, seconds);
* connection errors and 5xx responses are retried with bounded exponential
  backoff (``REPRO_STORE_RPC_RETRIES`` attempts starting at
  ``REPRO_STORE_RPC_BACKOFF`` seconds, doubling, capped at 2 s);
* writes (``append``, ``commit_run``, ``gc``, ``invalidate``, ``compact``,
  the queue ops) carry an idempotency key, generated once per logical call
  and resent verbatim on retry, so a write whose response was lost to a
  crash or a dropped connection is applied exactly once by the server; the
  payload also carries this client's identity, so the server's replay cache
  evicts per client and a slow client's retry window survives chatty peers;
* 4xx responses are never retried — they surface immediately as
  :class:`RemoteStoreError`;
* every call runs inside a ``store.rpc`` trace span whose ``op``/``status``/
  ``attempts``/``reused_conn`` args feed ``repro trace report``.

At open time the client performs a handshake and verifies the server's
schema tag matches its own :data:`~repro.store.backends.SCHEMA_VERSION` —
entries of another layout version must be rejected at the door, exactly as a
local open would discard them — and, when an explicit ``jsonl``/``sqlite``
directive accompanied the URL, that the server wraps that backend, so
backend-isolation expectations survive the wire.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import tempfile
import time
import urllib.parse
import uuid
from pathlib import Path
from typing import Optional, Sequence

from ..obs import trace
from ..obs.logs import get_logger
from .backends import SCHEMA_VERSION, StoreEntry

logger = get_logger("store")

#: socket timeout per RPC, seconds
ENV_RPC_TIMEOUT = "REPRO_STORE_RPC_TIMEOUT"
#: total attempts per RPC (first try included)
ENV_RPC_RETRIES = "REPRO_STORE_RPC_RETRIES"
#: initial backoff delay, seconds (doubles per retry, capped at 2 s)
ENV_RPC_BACKOFF = "REPRO_STORE_RPC_BACKOFF"

_DEFAULT_TIMEOUT = 10.0
_DEFAULT_RETRIES = 5
_DEFAULT_BACKOFF = 0.05
_BACKOFF_CAP = 2.0


class RemoteStoreError(ConnectionError):
    """A store RPC failed for good: retries exhausted or the server said no."""


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    try:
        return float(raw) if raw else default
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


class RemoteStoreBackend:
    """Client for a ``repro store serve`` instance; one RPC per operation."""

    name = "remote"
    supports_update = False

    def __init__(
        self, url: str, *, expect_backend: Optional[str] = None
    ) -> None:
        self.path = str(url).rstrip("/")
        parts = urllib.parse.urlsplit(self.path)
        if parts.scheme not in ("http", "https") or not parts.netloc:
            raise ValueError(f"remote store URL {url!r} is not http(s)://host[:port]")
        self._scheme = parts.scheme
        self._netloc = parts.netloc
        self._base = parts.path.rstrip("/")
        #: the wrapped backend the server is required to report at handshake
        #: (None = accept whichever it wraps)
        self.expect_backend = expect_backend
        self.timeout = _env_float(ENV_RPC_TIMEOUT, _DEFAULT_TIMEOUT)
        self.retries = max(1, _env_int(ENV_RPC_RETRIES, _DEFAULT_RETRIES))
        self.backoff = _env_float(ENV_RPC_BACKOFF, _DEFAULT_BACKOFF)
        #: the server's entry count as of the last response that carried one
        self.entries_total = 0
        self._identity: Optional[dict] = None
        #: the one persistent keep-alive connection this process holds, and
        #: the pid that owns it (a forked child must not reuse the parent's
        #: socket — it would interleave two processes' bytes on one stream)
        self._conn: Optional[http.client.HTTPConnection] = None
        self._conn_pid: Optional[int] = None
        #: identity sent with idempotent writes (the server's replay cache
        #: evicts per client); regenerated after fork with the connection
        self._client_id = uuid.uuid4().hex
        self._client_pid = os.getpid()
        #: queue-worker mode: stamp ``if_absent`` on appends so a worker
        #: whose lease was stolen can never land a duplicate verdict record
        self.append_if_absent = False
        #: session transport counters (reuse rate backs the keep-alive tests)
        self.rpc_calls = 0
        self.rpc_reused = 0
        # shard workers forked under a remote store still spool their slices
        # to local files; the directory is derived from the URL so the parent
        # and its forked children agree on it without extra plumbing
        url_digest = hashlib.sha256(self.path.encode("utf-8")).hexdigest()[:16]
        self.shard_dir = (
            Path(tempfile.gettempdir()) / f"pymarple-remote-{url_digest}" / "shards"
        )

    # -- transport ----------------------------------------------------------------
    def _ensure_identity(self) -> None:
        """Detect a fork: abandon the inherited socket, take a new client id.

        The inherited socket fd is a dup of the parent's — closing our copy
        cannot disturb the parent, but *using* it would interleave two
        processes' bytes on one stream.  The fresh client id keeps the
        server's per-client replay cache from conflating the two processes.
        """
        pid = os.getpid()
        if pid != self._client_pid:
            # closing our dup'd fd releases it without sending a FIN while
            # the parent still holds the connection
            self._drop_connection()
            self._client_id = uuid.uuid4().hex
            self._client_pid = pid

    def _acquire_connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """The process's persistent connection; ``(conn, reused)``."""
        self._ensure_identity()
        if self._conn is not None:
            return self._conn, True
        conn_cls = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        self._conn = conn_cls(self._netloc, timeout=self.timeout)
        self._conn_pid = os.getpid()
        return self._conn, False

    def _drop_connection(self) -> None:
        conn, self._conn, self._conn_pid = self._conn, None, None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _post(self, op: str, body: bytes) -> tuple[int, dict, bool]:
        """One request over the keep-alive connection; reconnects once.

        A reused connection can be stale (server restart, idle close) — the
        failure shows up as a connection error on the *first* byte, so one
        immediate retry on a fresh connection is transparent and safe: writes
        carry idempotency keys, so even a request that was applied before the
        response was lost cannot double-apply when resent.
        """
        for attempt in (0, 1):
            conn, reused = self._acquire_connection()
            try:
                conn.request(
                    "POST",
                    f"{self._base}/{op}",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                raw = response.read()
                status = response.status
                if response.will_close:
                    self._drop_connection()
                break
            except (OSError, http.client.HTTPException):
                self._drop_connection()
                if reused and attempt == 0:
                    continue
                raise
        self.rpc_calls += 1
        if reused:
            self.rpc_reused += 1
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            payload = {}
        if not isinstance(payload, dict):
            payload = {}
        return status, payload, reused

    def _call(
        self, op: str, payload: dict, *, idempotent: bool = False
    ) -> dict:
        """One RPC: timeout per attempt, bounded backoff on 5xx/connection loss.

        ``idempotent=True`` stamps a fresh idempotency key into the payload;
        the same key is resent on every retry, so the server applies the
        write once even when a response (not the write) was what got lost.
        """
        self._ensure_identity()  # the client id stamped below must be ours
        if idempotent:
            payload = {**payload, "key": uuid.uuid4().hex, "client": self._client_id}
        body = json.dumps(payload).encode("utf-8")
        delay = self.backoff
        last_error: Optional[BaseException] = None
        with trace.span("store.rpc", cat="store", op=op) as rpc_span:
            for attempt in range(1, self.retries + 1):
                if attempt > 1:
                    time.sleep(delay)
                    delay = min(delay * 2, _BACKOFF_CAP)
                try:
                    status, data, reused = self._post(op, body)
                except (OSError, http.client.HTTPException) as exc:
                    last_error = exc
                    logger.debug(
                        "store rpc %s attempt %d/%d failed: %s",
                        op, attempt, self.retries, exc,
                    )
                    continue
                rpc_span.set(status=status, attempts=attempt, reused_conn=reused)
                if status >= 500:
                    last_error = RemoteStoreError(
                        f"{op} failed with server error {status}: "
                        f"{data.get('error', '')}"
                    )
                    continue
                if status != 200:
                    raise RemoteStoreError(
                        f"store server rejected {op} ({status}): "
                        f"{data.get('error', 'no detail')}"
                    )
                total = data.get("entries")
                if isinstance(total, int):
                    self.entries_total = total
                return data
            rpc_span.set(status=0, attempts=self.retries)
        raise RemoteStoreError(
            f"store server {self.path} unreachable for {op} after "
            f"{self.retries} attempts ({last_error})"
        )

    # -- handshake ----------------------------------------------------------------
    def handshake(self) -> dict:
        """Fetch (once) and verify the server's identity record."""
        if self._identity is not None:
            return self._identity
        info = self._call("handshake", {})
        schema = info.get("schema")
        if schema != SCHEMA_VERSION:
            raise RemoteStoreError(
                f"store server {self.path} speaks schema {schema!r}, this "
                f"client needs {SCHEMA_VERSION!r}; upgrade one side"
            )
        served = info.get("backend")
        if self.expect_backend and served != self.expect_backend:
            raise RemoteStoreError(
                f"store server {self.path} wraps a {served!r} store, but "
                f"{self.expect_backend!r} was requested explicitly"
            )
        self._identity = info
        return info

    # -- the wire operations ------------------------------------------------------
    def lookup(self, env: str, fps: Sequence[str]) -> list[StoreEntry]:
        """Batched lookup; returns only the entries the server holds."""
        if not fps:
            return []
        data = self._call("lookup", {"env": env, "fps": list(fps)})
        entries = []
        for record in data.get("found", []):
            try:
                entries.append(StoreEntry.from_record(record))
            except (ValueError, KeyError, TypeError):
                continue
        return entries

    def cost_hints(self) -> dict[str, float]:
        data = self._call("cost_hints", {})
        costs = data.get("costs")
        return {
            fp: float(wall)
            for fp, wall in (costs or {}).items()
            if isinstance(wall, (int, float))
        }

    def append_entries(self, entries: Sequence[StoreEntry]) -> None:
        if not entries:
            return
        self._call(
            "append",
            {
                "entries": [entry.to_record() for entry in entries],
                "if_absent": self.append_if_absent,
            },
            idempotent=True,
        )

    def compact(self) -> None:
        self._call("compact", {}, idempotent=True)

    def invalidate(
        self, scope: str, method: str, spec_digest: str, library_digest: str
    ) -> int:
        data = self._call(
            "invalidate",
            {
                "scope": scope,
                "method": method,
                "spec": spec_digest,
                "library": library_digest,
            },
            idempotent=True,
        )
        return int(data.get("dropped", 0))

    def commit_run(self, touched: Sequence[str]) -> int:
        data = self._call("commit_run", {"touched": list(touched)}, idempotent=True)
        return int(data.get("run", 0))

    def gc(self, keep_last: int) -> int:
        data = self._call("gc", {"keep_last": keep_last}, idempotent=True)
        return int(data.get("dropped", 0))

    # -- work-queue operations ----------------------------------------------------
    def enqueue(self, items: Sequence[dict], dispatch: Optional[str] = None) -> dict:
        """Offer obligation records to the server's work queue."""
        return self._call(
            "enqueue",
            {"items": list(items), "dispatch": dispatch},
            idempotent=True,
        )

    def lease(self, count: int, ttl: float, *, worker: str = "") -> dict:
        """Claim up to ``count`` pending items under a ``ttl``-second lease.

        Returns the server's response: ``lease`` (id or None), ``items``
        (cost-ordered records), ``reclaimed`` and ``queued``.  Leasing is
        idempotent on retry: the replay cache returns the original grant, so
        a lost response cannot strand items under a phantom lease.
        """
        return self._call(
            "lease",
            {"count": count, "ttl": ttl, "worker": worker},
            idempotent=True,
        )

    def complete(self, lease_id: str, keys: Sequence[str]) -> dict:
        """Acknowledge discharged items; call only after verdicts are durable."""
        return self._call(
            "complete",
            {"lease": lease_id, "keys": list(keys)},
            idempotent=True,
        )

    def extend(self, lease_id: str, ttl: float) -> bool:
        """Renew a lease (server-relative deadline); False = lease lost."""
        data = self._call(
            "extend", {"lease": lease_id, "ttl": ttl}, idempotent=True
        )
        return bool(data.get("ok"))

    def queue_status(self, dispatch: Optional[str] = None) -> dict:
        return self._call("queue_status", {"dispatch": dispatch})

    def stats(self) -> dict:
        """The server's per-op counters, lookup hit-rate and queue state."""
        return self._call("stats", {})

    # -- local-protocol stubs -----------------------------------------------------
    def load(self, *, wipe_mismatch: bool = True):
        raise RemoteStoreError(
            "a remote store is not loaded wholesale; the client looks "
            "entries up in batches (this is a bug in the caller)"
        )

    def update(self, fn, *, entries: bool = True, runs: bool = True):
        raise RemoteStoreError(
            "update(fn) closures cannot cross the wire; use the store-level "
            "operations (compact/invalidate/commit_run/gc) instead"
        )

    def close(self) -> None:
        """Drop the keep-alive connection (call before ``os.fork``)."""
        self._drop_connection()
