"""Quickstart: verify a representation invariant with Hoare Automata Types.

The example builds the paper's running Set ADT on top of a key-value store:
elements are stored under themselves as keys, and the representation
invariant demands that a value is never put twice (element uniqueness).  We

1. declare the backing library (operators + HAT signatures),
2. write the ADT methods in the Mini-ML surface language,
3. state the invariant as a symbolic finite automaton,
4. run the bidirectional HAT checker, and
5. execute the verified code against the trace-based library model to watch
   the invariant hold dynamically.

Run with:  python examples/quickstart.py
"""

from repro import smt
from repro.smt.sorts import BOOL, ELEM, UNIT
from repro.lang.desugar import desugar_program
from repro.libraries import make_kvstore
from repro.sfa import accepts, symbolic as S
from repro.typecheck import Checker, invariant_method
from repro.types import base


def main() -> None:
    # 1. the backing library: put / exists / get over elements
    library = make_kvstore(ELEM, ELEM, name="KVStore")
    put = library.operators["put"]

    # 2. the ADT implementation, written in the Mini-ML surface syntax
    source = """
    let insert (x : Elem.t) : unit =
      if exists x then () else put x x

    let mem (x : Elem.t) : bool =
      exists x
    """
    program = desugar_program(source, effectful_ops=library.effectful_op_names())

    # 3. the representation invariant I_Set(el):
    #    every put uses the element itself as key, and an element is put at most once.
    el = smt.var("el", ELEM)
    key_var, value_var = put.arg_vars
    keyed = S.globally(S.not_(S.event(put, smt.not_(smt.eq(key_var, value_var)))))
    put_el = S.event(put, smt.eq(value_var, el))
    once = S.globally(S.implies(put_el, S.next_(S.not_(S.eventually(put_el)))))
    invariant = S.and_(keyed, once)
    print("representation invariant:")
    print(f"  {invariant}\n")

    # 4. verify both methods against  el ⤳ x → [I_Set(el)] · [I_Set(el)]
    checker = Checker(
        operators=library.operators,
        delta=library.delta,
        pure_ops=library.pure_ops,
        axioms=library.axioms,
    )
    ghosts = (("el", ELEM),)
    specs = {
        "insert": invariant_method("insert", ghosts, [("x", base(ELEM))], invariant, base(UNIT)),
        "mem": invariant_method("mem", ghosts, [("x", base(ELEM))], invariant, base(BOOL)),
    }
    for method, spec in specs.items():
        result = checker.check_method(program[method], spec, specs)
        status = "VERIFIED" if result.verified else f"REJECTED ({result.error})"
        print(
            f"{method:>8}: {status}  "
            f"[#SAT={result.stats.smt_queries}, #FA⊆={result.stats.fa_inclusion_checks}]"
        )

    # ... and confirm that the unchecked variant is rejected.
    bad_source = "let insert_bad (x : Elem.t) : unit = put x x"
    bad = desugar_program(bad_source, effectful_ops=library.effectful_op_names())
    result = checker.check_method(bad["insert_bad"], specs["insert"], specs)
    print(f"\ninsert_bad (no membership check): verified = {result.verified}  (expected False)")

    # 5. run the verified implementation against the trace model
    from repro.lang.interp import Interpreter, module_environment

    interpreter = Interpreter(library.model(), library.pure_impls)
    module = module_environment(program, interpreter)
    trace = None
    from repro.sfa.events import Trace

    trace = Trace()
    for element in ["apple", "pear", "apple", "plum"]:
        trace = interpreter.call(module["insert"], [element], trace).trace
    print(f"\nexecution trace after four inserts:\n  {trace}")
    for element in ["apple", "pear", "plum"]:
        ok = accepts(invariant, trace, {el: element})
        print(f"  invariant holds for el={element!r}: {ok}")


if __name__ == "__main__":
    main()
