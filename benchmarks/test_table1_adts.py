"""Table 1 — verify each ADT/library row and report the per-ADT statistics.

Each benchmark verifies *every* method of one corpus row (the paper's
``t_total`` column); the extra info attached to the benchmark record carries
the remaining Table 1 columns (#Method, #Ghost, s_I, and the most complex
method's #Branch/#App/#SAT/#FA⊆/avg s_FA).
"""

import pytest

from repro.suite.registry import all_benchmarks
from .conftest import corpus_param, include_slow


def _rows():
    return [
        corpus_param(bench, bench.key, bench, id=bench.key)
        for bench in all_benchmarks(include_slow=include_slow())
    ]


@pytest.mark.parametrize("key,bench", _rows())
def test_table1_row(benchmark, key, bench):
    def verify():
        return bench.verify_all()

    stats = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert stats.all_verified, [
        (r.method, r.error) for r in stats.method_results if not r.verified
    ]
    row = stats.as_row()
    benchmark.extra_info.update(
        {
            "ADT": stats.adt,
            "Library": stats.library,
            "#Method": stats.num_methods,
            "#Ghost": stats.num_ghosts,
            "sI": stats.invariant_size,
            "hardest #Branch": row.get("#Branch"),
            "hardest #App": row.get("#App"),
            "hardest #SAT": row.get("#SAT"),
            "hardest #FA⊆": row.get("#FA⊆"),
            "hardest avg sFA": row.get("avg. sFA"),
        }
    )
