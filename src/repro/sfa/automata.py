"""Explicit (deterministic) finite automata over a finite character alphabet.

After the alphabet transformation of Sec. 5.1 the symbolic automata of HATs
become ordinary finite automata whose characters are minterm identifiers.
This module provides the DFA algebra the inclusion check needs: product
constructions, complement, emptiness, inclusion, and Moore minimisation (used
both for reporting the paper's ``avg. s_FA`` statistic and as an ablation).

States are integers ``0..n-1``; characters are integers ``0..k-1``; automata
are complete by construction (every state has a transition on every
character).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Dfa:
    """A complete deterministic finite automaton."""

    num_chars: int
    transitions: list[list[int]]
    accepting: frozenset[int]
    start: int = 0

    def __post_init__(self) -> None:
        for state, row in enumerate(self.transitions):
            if len(row) != self.num_chars:
                raise ValueError(f"state {state} has {len(row)} transitions, expected {self.num_chars}")
            for target in row:
                if not (0 <= target < len(self.transitions)):
                    raise ValueError(f"transition target {target} out of range")
        if not (0 <= self.start < max(1, len(self.transitions))):
            raise ValueError("start state out of range")
        self.accepting = frozenset(self.accepting)

    # -- observers -------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.transitions)

    @property
    def num_transitions(self) -> int:
        """Total transition count (complete DFA: states × characters)."""
        return self.num_states * self.num_chars

    def step(self, state: int, char: int) -> int:
        return self.transitions[state][char]

    def accepts_word(self, word: Sequence[int]) -> bool:
        state = self.start
        for char in word:
            if not (0 <= char < self.num_chars):
                raise ValueError(f"character {char} outside alphabet")
            state = self.transitions[state][char]
        return state in self.accepting

    def reachable_states(self) -> set[int]:
        seen = {self.start}
        frontier = [self.start]
        while frontier:
            state = frontier.pop()
            for target in self.transitions[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def is_empty(self) -> bool:
        """Is the recognised language empty?"""
        return not (self.reachable_states() & self.accepting)

    def enumerate_words(self, max_length: int) -> Iterable[tuple[int, ...]]:
        """All accepted words up to ``max_length`` (testing helper)."""
        frontier: list[tuple[tuple[int, ...], int]] = [((), self.start)]
        while frontier:
            word, state = frontier.pop(0)
            if state in self.accepting:
                yield word
            if len(word) < max_length:
                for char in range(self.num_chars):
                    frontier.append((word + (char,), self.transitions[state][char]))

    # -- boolean operations -------------------------------------------------------------
    def complement(self) -> "Dfa":
        return Dfa(
            num_chars=self.num_chars,
            transitions=[list(row) for row in self.transitions],
            accepting=frozenset(range(self.num_states)) - self.accepting,
            start=self.start,
        )

    def _product(self, other: "Dfa", accept) -> "Dfa":
        if self.num_chars != other.num_chars:
            raise ValueError("automata must share an alphabet")
        index: dict[tuple[int, int], int] = {}
        transitions: list[list[int]] = []
        accepting: set[int] = set()
        frontier: list[tuple[int, int]] = []

        def state_of(pair: tuple[int, int]) -> int:
            if pair not in index:
                index[pair] = len(transitions)
                transitions.append([0] * self.num_chars)
                frontier.append(pair)
                if accept(pair[0] in self.accepting, pair[1] in other.accepting):
                    accepting.add(index[pair])
            return index[pair]

        start = state_of((self.start, other.start))
        while frontier:
            pair = frontier.pop()
            source = index[pair]
            for char in range(self.num_chars):
                target = (self.transitions[pair[0]][char], other.transitions[pair[1]][char])
                transitions[source][char] = state_of(target)
        return Dfa(self.num_chars, transitions, frozenset(accepting), start)

    def intersect(self, other: "Dfa") -> "Dfa":
        return self._product(other, lambda a, b: a and b)

    def union(self, other: "Dfa") -> "Dfa":
        return self._product(other, lambda a, b: a or b)

    def difference(self, other: "Dfa") -> "Dfa":
        return self._product(other, lambda a, b: a and not b)

    # -- inclusion and equivalence --------------------------------------------------------
    def is_subset_of(self, other: "Dfa") -> bool:
        """L(self) ⊆ L(other), via an on-the-fly product emptiness check."""
        if self.num_chars != other.num_chars:
            raise ValueError("automata must share an alphabet")
        seen = {(self.start, other.start)}
        frontier = [(self.start, other.start)]
        while frontier:
            a, b = frontier.pop()
            if a in self.accepting and b not in other.accepting:
                return False
            for char in range(self.num_chars):
                pair = (self.transitions[a][char], other.transitions[b][char])
                if pair not in seen:
                    seen.add(pair)
                    frontier.append(pair)
        return True

    def counterexample(self, other: "Dfa") -> tuple[int, ...] | None:
        """A word in L(self) \\ L(other), or ``None`` when included."""
        return self.counterexample_search(other)[0]

    def counterexample_search(
        self, other: "Dfa"
    ) -> tuple[tuple[int, ...] | None, int]:
        """BFS product search: (shortest witness or ``None``, #pairs explored).

        The explored-pair count is the product-walk cost the lazy discharge
        path is benchmarked against; exposing it here keeps the two searches
        directly comparable.
        """
        if self.num_chars != other.num_chars:
            raise ValueError("automata must share an alphabet")
        start = (self.start, other.start)
        parents: dict[tuple[int, int], tuple[tuple[int, int], int] | None] = {start: None}
        frontier = deque([start])
        while frontier:
            pair = frontier.popleft()
            a, b = pair
            if a in self.accepting and b not in other.accepting:
                word: list[int] = []
                node: tuple[int, int] | None = pair
                while parents[node] is not None:
                    node, char = parents[node]  # type: ignore[misc]
                    word.append(char)
                return tuple(reversed(word)), len(parents)
            for char in range(self.num_chars):
                target = (self.transitions[a][char], other.transitions[b][char])
                if target not in parents:
                    parents[target] = (pair, char)
                    frontier.append(target)
        return None, len(parents)

    def equivalent(self, other: "Dfa") -> bool:
        return self.is_subset_of(other) and other.is_subset_of(self)

    # -- minimisation -----------------------------------------------------------------------
    def minimize(self) -> "Dfa":
        """Moore partition-refinement minimisation (restricted to reachable states)."""
        reachable = sorted(self.reachable_states())
        remap = {state: i for i, state in enumerate(reachable)}
        transitions = [
            [remap[self.transitions[state][c]] for c in range(self.num_chars)]
            for state in reachable
        ]
        accepting = {remap[s] for s in reachable if s in self.accepting}
        start = remap[self.start]
        n = len(reachable)
        if n == 0:
            return Dfa(self.num_chars, [[0] * self.num_chars], frozenset(), 0)

        partition = [0 if s in accepting else 1 for s in range(n)]
        while True:
            signature = {}
            new_ids: list[int] = []
            for state in range(n):
                sig = (partition[state], tuple(partition[transitions[state][c]] for c in range(self.num_chars)))
                if sig not in signature:
                    signature[sig] = len(signature)
                new_ids.append(signature[sig])
            if new_ids == partition:
                break
            partition = new_ids

        num_blocks = max(partition) + 1
        block_transitions = [[0] * self.num_chars for _ in range(num_blocks)]
        block_accepting: set[int] = set()
        seen_blocks: set[int] = set()
        for state in range(n):
            block = partition[state]
            if block in seen_blocks:
                continue
            seen_blocks.add(block)
            for char in range(self.num_chars):
                block_transitions[block][char] = partition[transitions[state][char]]
            if state in accepting:
                block_accepting.add(block)
        return Dfa(self.num_chars, block_transitions, frozenset(block_accepting), partition[start])


# ---------------------------------------------------------------------------
# Constructions used by tests and the ablation benchmarks
# ---------------------------------------------------------------------------


def empty_dfa(num_chars: int) -> Dfa:
    """The automaton recognising the empty language."""
    return Dfa(num_chars, [[0] * num_chars], frozenset(), 0)


def universal_dfa(num_chars: int) -> Dfa:
    """The automaton recognising every word."""
    return Dfa(num_chars, [[0] * num_chars], frozenset({0}), 0)


def word_dfa(word: Sequence[int], num_chars: int) -> Dfa:
    """The automaton recognising exactly ``word``."""
    n = len(word)
    sink = n + 1
    transitions = []
    for i in range(n + 2):
        row = [sink] * num_chars
        transitions.append(row)
    for i, char in enumerate(word):
        transitions[i][char] = i + 1
    return Dfa(num_chars, transitions, frozenset({n}), 0)
